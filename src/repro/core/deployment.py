"""Replica deployment: allocation, parameter loading, warm starts, teardown.

Loading happens over the shared fair-share links, so concurrent scale-ups
genuinely contend (the effect HRG coordination mitigates).  On teardown a
replica's parameters stay in the host-memory cache of their servers,
turning later scale-ups on those servers into warm starts (§7).
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.cluster.allocator import (
    StageReservation,
    degrade_until_fit,
)
from repro.core.context import ServingContext
from repro.metrics.collector import MetricsCollector, ScalingEvent
from repro.models.profiler import ModelProfile
from repro.partitioning.plan import PartitionPlan
from repro.pipeline.batching import BatcherConfig
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.pipeline.router import ModelRouter
from repro.scaling.coordinator import ScalingCoordinator
from repro.scaling.warm_cache import HostParamCache
from repro.workloads.requests import Request

_replica_ids = itertools.count()


class ReplicaFactory:
    """Creates and tears down pipeline replicas for one serving system."""

    def __init__(
        self,
        ctx: ServingContext,
        *,
        routers: dict[str, ModelRouter],
        metrics: MetricsCollector,
        on_request_complete: Callable[[Request], None],
        warm_cache: HostParamCache | None = None,
        coordinator: ScalingCoordinator | None = None,
        interference: Callable | None = None,
        loading_speedup: float = 1.0,
        cache_on_release: bool = True,
        batcher_max_wait: float = 0.3,
        # Serverless container/runtime initialization paid on every scale-up
        # in addition to parameter loading; warm starts (§7) skip most of it.
        startup_overhead: float = 5.0,
        warm_startup_factor: float = 0.2,
        # PipeBoost-style pipelined loading: stage transfers are sequenced
        # front-to-back, the replica activates once stage 0 lands, and
        # later stages open their gates as their own transfers complete.
        pipelined_loading: bool = False,
    ):
        self.ctx = ctx
        self.routers = routers
        self.metrics = metrics
        self.on_request_complete = on_request_complete
        self.warm_cache = warm_cache
        self.coordinator = coordinator
        self.interference = interference
        self.loading_speedup = loading_speedup
        self.cache_on_release = cache_on_release
        self.batcher_max_wait = batcher_max_wait
        self.startup_overhead = startup_overhead
        self.warm_startup_factor = warm_startup_factor
        self.pipelined_loading = pipelined_loading
        # QoS hooks (set by ServingSystem.enable_qos; None = historical
        # behaviour): class-priority batch formation inside new replicas,
        # and pending-deploy claims registered with the allocator so a
        # more urgent class can preempt a loading deploy.
        self.batch_priority_of: Callable[[Request], int] | None = None
        self.batch_aging: float | None = None
        self.deployed = 0
        self.released = 0
        # Every replica this factory ever created, in deployment order.
        # The registry is what lets shutdown, failure injection and the
        # invariant auditor reach replicas that never activated (still
        # LOADING) or already left their router (DRAINING) — both
        # invisible to the routers.  RELEASED entries are retained on
        # purpose: the auditor replays their full lifecycle at quiesce,
        # and a simulation's replica population is bounded.
        self.replicas: list[PipelineReplica] = []

    # ------------------------------------------------------------------
    def deploy(
        self,
        profile: ModelProfile,
        plan: PartitionPlan,
        *,
        batch_cap: int | None = None,
        scorer: Callable | None = None,
        wait_time: float = 0.0,
        event_kind: str = "scale_out",
    ) -> PipelineReplica:
        """Allocate, start loading, and return a LOADING replica.

        Raises :class:`AllocationError` when the fragmented cluster cannot
        host the plan (callers record the wait and retry).
        """
        sim = self.ctx.sim
        model = profile.spec.name
        batch = max(min(plan.max_batch, batch_cap or plan.max_batch), 1)
        if scorer is None and self.coordinator is not None:
            scorer = self.coordinator.scorer(model, sim.now)
        stage_scorers = self._coverage_scorers(profile, plan, scorer)
        # Memory-aware degradation: a fragmented cluster may not offer the
        # full KV reservation for the target batch — halve the batch (and
        # with it the KV pool) until the plan fits, rather than failing.
        def attempt(b: int) -> list[StageReservation]:
            mems = plan.memory_per_stage(b, profile.spec.kv_bytes_per_request)
            return self.ctx.allocator.allocate_stages(
                model, mems, scorer=scorer, stage_scorers=stage_scorers
            )

        batch, reservations = degrade_until_fit(batch, attempt)
        replica = PipelineReplica(
            sim,
            profile,
            plan,
            reservations,
            batcher_config=BatcherConfig(
                max_batch=batch, max_wait=self.batcher_max_wait
            ),
            on_request_complete=self.on_request_complete,
            on_active=self._on_replica_active,
            on_released=self._teardown,
            interference=self.interference,
            name=f"{model}/r{next(_replica_ids)}",
        )
        if self.batch_priority_of is not None:
            # Class-priority batch formation from the first request on.
            replica.use_priority_batcher(
                self.batch_priority_of, aging=self.batch_aging
            )
        # Until activation this deploy is a *pending* resource claim: a
        # strictly more urgent class finding no feasible fragment may
        # cancel it (drain releases the reservations exactly once).
        replica.pending_claim = self.ctx.allocator.register_pending_deploy(
            model, reservations, replica.drain
        )
        if self.coordinator is not None:
            self.coordinator.record_scaling(
                model, [r.gpu for r in reservations], sim.now
            )
        self._start_loads(replica, profile, plan, reservations, wait_time, event_kind)
        self.deployed += 1
        self.replicas.append(replica)
        return replica

    def _coverage_scorers(
        self,
        profile: ModelProfile,
        plan: PartitionPlan,
        base: Callable | None,
    ) -> list[Callable] | None:
        """Per-stage scorers that prefer servers already holding a stage's
        byte range in the warm cache.

        The server-level affinity scorer cannot see *which* stage it is
        placing, so on a multi-server cluster a redeploy scatters stage
        ranges onto servers whose caches hold different bytes and every
        restart rides the cold path.  The coverage bonus (weighted by tier,
        host above SSD) pins each stage back onto its bytes whenever memory
        allows; with no cache configured the allocator sees no per-stage
        scorers and behaves exactly as before.
        """
        cache = self.warm_cache
        if cache is None:
            return None
        scorers: list[Callable] = []
        for sp in plan.stages:
            memo: dict[str, float] = {}

            def bonus(gpu, sp=sp, memo=memo) -> float:
                server = gpu.server
                value = memo.get(server.sid)
                if value is None:
                    # now=None: a placement *probe* is not a use — touching
                    # here would inflate GDSF frequency for every candidate
                    # server merely considered.
                    host, ssd = cache.coverage_by_tier(
                        server, profile, sp.start, sp.end, None
                    )
                    value = (2.0 * host + 1.0 * ssd) / max(sp.param_bytes, 1.0)
                    memo[server.sid] = value
                return value

            if base is None:
                scorers.append(bonus)
            else:
                scorers.append(lambda g, b=bonus: base(g) + b(g))
        return scorers

    def _on_replica_active(self, replica: PipelineReplica) -> None:
        """Loading finished: the deploy is no longer a preemptible claim."""
        self.ctx.allocator.claim_resolved(replica.pending_claim, activated=True)
        self.routers[replica.profile.spec.name].add(replica)

    def live_replicas(self) -> list[PipelineReplica]:
        """Replicas holding resources (anything not yet RELEASED)."""
        return [r for r in self.replicas if r.state is not ReplicaState.RELEASED]

    # ------------------------------------------------------------------
    def _start_loads(
        self,
        replica: PipelineReplica,
        profile: ModelProfile,
        plan: PartitionPlan,
        reservations: list[StageReservation],
        wait_time: float,
        event_kind: str,
    ) -> None:
        sim = self.ctx.sim
        cm = self.ctx.cost_model
        cache = self.warm_cache
        name = profile.spec.name
        pipelined = self.pipelined_loading
        # Pin the stage objects: after activation a refactor may swap
        # replica.stages, but completion callbacks refer to *these* stages.
        stages = list(replica.stages)
        state = {
            "warm_bytes": 0.0,
            "cold_bytes": 0.0,
            "stages_left": len(stages),
        }
        for stage in stages:
            # Parameters are not on the GPU until the transfers land; a
            # deploy cancelled mid-load must not leave phantom warm entries
            # at teardown.
            stage.params_resident = False
            if pipelined:
                stage.gate_load()

        def finish(warm: bool) -> None:
            if replica.state is not ReplicaState.LOADING:
                # Cancelled while loading (drained by scale-in, reclamation
                # or shutdown): the teardown path already released the
                # reservations — activating now would serve from freed GPUs.
                return
            replica.activate()
            if sim.recorder is not None:
                sim.recorder.record(
                    sim.now,
                    "replica_activated",
                    replica=replica.name,
                    model=name,
                    stages=plan.n_stages,
                    event=event_kind,
                    wait_time=wait_time,
                    init_time=sim.now - replica.created_at,
                    warm=warm,
                    warm_bytes=state["warm_bytes"],
                    cold_bytes=state["cold_bytes"],
                )
            self.metrics.on_event(
                ScalingEvent(
                    time=sim.now,
                    kind=event_kind,
                    detail=f"{replica.name} K={plan.n_stages}",
                    wait_time=wait_time,
                    init_time=sim.now - replica.created_at,
                    warm=warm,
                )
            )

        def startup_overhead() -> tuple[float, bool]:
            total = state["warm_bytes"] + state["cold_bytes"]
            warm = total > 0 and state["warm_bytes"] >= 0.5 * total
            return (
                self.startup_overhead
                * (self.warm_startup_factor if warm else 1.0),
                warm,
            )

        # Per stage: (link, nbytes, per-stream max rate, extra latency).
        stage_parts: list[list[tuple]] = []
        for stage_plan, reservation in zip(plan.stages, reservations):
            server = reservation.gpu.server
            param_bytes = stage_plan.param_bytes
            host_warm = ssd_warm = 0.0
            if cache is not None:
                host_warm, ssd_warm = cache.coverage_by_tier(
                    server, profile, stage_plan.start, stage_plan.end, sim.now
                )
            cold = max(param_bytes - host_warm - ssd_warm, 0.0)
            state["warm_bytes"] += host_warm + ssd_warm
            state["cold_bytes"] += cold
            parts: list[tuple] = []
            # The fixed warm-load overhead is a latency before the transfer
            # starts, not a per-byte rate derate: folding it into the rate
            # would scale the fixed part under link contention.  Bytes then
            # move at the full tier bandwidth (fair-share contention on top).
            if host_warm > 0:
                parts.append(
                    (server.pcie, host_warm, None, cm.config.warm_load_overhead)
                )
            if ssd_warm > 0:
                parts.append(
                    (server.ssd, ssd_warm, None, cm.config.warm_load_overhead)
                )
            if cold > 0:
                # Per-stream rate reproduces the calibrated load-time curve
                # when uncontended; the shared link adds contention on top.
                duration = cm.cold_load_time(cold) / self.loading_speedup
                parts.append((self.ctx.cluster.storage, cold, cold / duration, 0.0))
            stage_parts.append(parts)

        def stage_done(idx: int) -> None:
            stage = stages[idx]
            stage.params_resident = True
            if cache is not None:
                # Cache-through (§7) *on completion*: the host-side copy
                # exists only once the bytes actually streamed through, so
                # a cancelled deploy never fabricates warm coverage.
                sp = plan.stages[idx]
                cache.put(
                    reservations[idx].gpu.server,
                    name,
                    sp.start,
                    sp.end,
                    sp.param_bytes,
                    sim.now,
                    load_cost=cm.cold_load_time(sp.param_bytes),
                )
            if pipelined:
                if idx == 0:
                    overhead, warm = startup_overhead()

                    def open_first() -> None:
                        stage.mark_loaded()
                        finish(warm)

                    sim.schedule(overhead, open_first)
                else:
                    stage.mark_loaded()
                if idx + 1 < len(stages):
                    start_stage(idx + 1)
            else:
                state["stages_left"] -= 1
                if state["stages_left"] == 0:
                    overhead, warm = startup_overhead()
                    sim.schedule(overhead, finish, warm)

        def start_stage(idx: int) -> None:
            parts = stage_parts[idx]
            if not parts:
                # Nothing to move (e.g. zero-parameter test stages); keep
                # completion asynchronous like a real transfer would be.
                sim.schedule(0.0, stage_done, idx)
                return
            pending = {"n": len(parts)}

            def part_done() -> None:
                pending["n"] -= 1
                if pending["n"] == 0:
                    stage_done(idx)

            for link, nbytes, rate, delay in parts:
                if delay > 0:
                    sim.schedule(
                        delay,
                        lambda link=link, nbytes=nbytes, rate=rate: link.transfer(
                            nbytes, part_done, max_rate=rate
                        ),
                    )
                else:
                    link.transfer(nbytes, part_done, max_rate=rate)

        if pipelined:
            # Sequenced front-to-back: stage 0 takes the links uncontended
            # (by this deploy) and the replica starts serving once it lands;
            # prefill then chases the load front down the pipeline.
            start_stage(0)
        else:
            for idx in range(len(stages)):
                start_stage(idx)

    # ------------------------------------------------------------------
    def _teardown(self, replica: PipelineReplica) -> None:
        """Release GPU reservations; keep parameters warm in host memory."""
        sim = self.ctx.sim
        model = replica.profile.spec.name
        # A deploy cancelled before activating (reclamation, shutdown or
        # preemption) stops being a pending claim here; preempted claims
        # already resolved and keep their "preempted" state.
        self.ctx.allocator.claim_resolved(replica.pending_claim, activated=False)
        self.routers[model].remove(replica)
        for stage in replica.stages:
            reservation = stage.reservation
            if reservation.released:
                continue
            if (
                self.cache_on_release
                and self.warm_cache is not None
                and stage.params_resident
                # A cancelled deploy's stages whose transfers never landed
                # hold no parameters — caching them would fabricate warm
                # coverage for bytes that never moved.
            ):
                self.warm_cache.put(
                    reservation.gpu.server,
                    model,
                    stage.plan.start,
                    stage.plan.end,
                    stage.plan.param_bytes,
                    sim.now,
                    load_cost=self.ctx.cost_model.cold_load_time(
                        stage.plan.param_bytes
                    ),
                )
            self.ctx.allocator.release(reservation)
        self.released += 1
        if sim.recorder is not None:
            sim.recorder.record(
                sim.now,
                "teardown",
                replica=replica.name,
                model=model,
            )
        self.metrics.on_event(
            ScalingEvent(time=sim.now, kind="scale_in", detail=replica.name)
        )

    def release(self, replica: PipelineReplica) -> None:
        """Gracefully drain a replica (release happens when it empties)."""
        self.routers[replica.profile.spec.name].remove(replica)
        replica.drain()
