"""Replica deployment: allocation, parameter loading, warm starts, teardown.

Loading happens over the shared fair-share links, so concurrent scale-ups
genuinely contend (the effect HRG coordination mitigates).  On teardown a
replica's parameters stay in the host-memory cache of their servers,
turning later scale-ups on those servers into warm starts (§7).
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.cluster.allocator import (
    StageReservation,
    degrade_until_fit,
)
from repro.core.context import ServingContext
from repro.metrics.collector import MetricsCollector, ScalingEvent
from repro.models.profiler import ModelProfile
from repro.partitioning.plan import PartitionPlan
from repro.pipeline.batching import BatcherConfig
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.pipeline.router import ModelRouter
from repro.scaling.coordinator import ScalingCoordinator
from repro.scaling.warm_cache import HostParamCache
from repro.workloads.requests import Request

_replica_ids = itertools.count()


class ReplicaFactory:
    """Creates and tears down pipeline replicas for one serving system."""

    def __init__(
        self,
        ctx: ServingContext,
        *,
        routers: dict[str, ModelRouter],
        metrics: MetricsCollector,
        on_request_complete: Callable[[Request], None],
        warm_cache: HostParamCache | None = None,
        coordinator: ScalingCoordinator | None = None,
        interference: Callable | None = None,
        loading_speedup: float = 1.0,
        cache_on_release: bool = True,
        batcher_max_wait: float = 0.3,
        # Serverless container/runtime initialization paid on every scale-up
        # in addition to parameter loading; warm starts (§7) skip most of it.
        startup_overhead: float = 5.0,
        warm_startup_factor: float = 0.2,
    ):
        self.ctx = ctx
        self.routers = routers
        self.metrics = metrics
        self.on_request_complete = on_request_complete
        self.warm_cache = warm_cache
        self.coordinator = coordinator
        self.interference = interference
        self.loading_speedup = loading_speedup
        self.cache_on_release = cache_on_release
        self.batcher_max_wait = batcher_max_wait
        self.startup_overhead = startup_overhead
        self.warm_startup_factor = warm_startup_factor
        # QoS hooks (set by ServingSystem.enable_qos; None = historical
        # behaviour): class-priority batch formation inside new replicas,
        # and pending-deploy claims registered with the allocator so a
        # more urgent class can preempt a loading deploy.
        self.batch_priority_of: Callable[[Request], int] | None = None
        self.batch_aging: float | None = None
        self.deployed = 0
        self.released = 0
        # Every replica this factory ever created, in deployment order.
        # The registry is what lets shutdown, failure injection and the
        # invariant auditor reach replicas that never activated (still
        # LOADING) or already left their router (DRAINING) — both
        # invisible to the routers.  RELEASED entries are retained on
        # purpose: the auditor replays their full lifecycle at quiesce,
        # and a simulation's replica population is bounded.
        self.replicas: list[PipelineReplica] = []

    # ------------------------------------------------------------------
    def deploy(
        self,
        profile: ModelProfile,
        plan: PartitionPlan,
        *,
        batch_cap: int | None = None,
        scorer: Callable | None = None,
        wait_time: float = 0.0,
        event_kind: str = "scale_out",
    ) -> PipelineReplica:
        """Allocate, start loading, and return a LOADING replica.

        Raises :class:`AllocationError` when the fragmented cluster cannot
        host the plan (callers record the wait and retry).
        """
        sim = self.ctx.sim
        model = profile.spec.name
        batch = max(min(plan.max_batch, batch_cap or plan.max_batch), 1)
        if scorer is None and self.coordinator is not None:
            scorer = self.coordinator.scorer(model, sim.now)
        # Memory-aware degradation: a fragmented cluster may not offer the
        # full KV reservation for the target batch — halve the batch (and
        # with it the KV pool) until the plan fits, rather than failing.
        def attempt(b: int) -> list[StageReservation]:
            mems = plan.memory_per_stage(b, profile.spec.kv_bytes_per_request)
            return self.ctx.allocator.allocate_stages(model, mems, scorer=scorer)

        batch, reservations = degrade_until_fit(batch, attempt)
        replica = PipelineReplica(
            sim,
            profile,
            plan,
            reservations,
            batcher_config=BatcherConfig(
                max_batch=batch, max_wait=self.batcher_max_wait
            ),
            on_request_complete=self.on_request_complete,
            on_active=self._on_replica_active,
            on_released=self._teardown,
            interference=self.interference,
            name=f"{model}/r{next(_replica_ids)}",
        )
        if self.batch_priority_of is not None:
            # Class-priority batch formation from the first request on.
            replica.use_priority_batcher(
                self.batch_priority_of, aging=self.batch_aging
            )
        # Until activation this deploy is a *pending* resource claim: a
        # strictly more urgent class finding no feasible fragment may
        # cancel it (drain releases the reservations exactly once).
        replica.pending_claim = self.ctx.allocator.register_pending_deploy(
            model, reservations, replica.drain
        )
        if self.coordinator is not None:
            self.coordinator.record_scaling(
                model, [r.gpu for r in reservations], sim.now
            )
        self._start_loads(replica, profile, plan, reservations, wait_time, event_kind)
        self.deployed += 1
        self.replicas.append(replica)
        return replica

    def _on_replica_active(self, replica: PipelineReplica) -> None:
        """Loading finished: the deploy is no longer a preemptible claim."""
        self.ctx.allocator.claim_resolved(replica.pending_claim, activated=True)
        self.routers[replica.profile.spec.name].add(replica)

    def live_replicas(self) -> list[PipelineReplica]:
        """Replicas holding resources (anything not yet RELEASED)."""
        return [r for r in self.replicas if r.state is not ReplicaState.RELEASED]

    # ------------------------------------------------------------------
    def _start_loads(
        self,
        replica: PipelineReplica,
        profile: ModelProfile,
        plan: PartitionPlan,
        reservations: list[StageReservation],
        wait_time: float,
        event_kind: str,
    ) -> None:
        sim = self.ctx.sim
        state = {"remaining": 0, "warm_bytes": 0.0, "cold_bytes": 0.0}

        def finish(warm: bool) -> None:
            if replica.state is not ReplicaState.LOADING:
                # Cancelled while loading (drained by scale-in, reclamation
                # or shutdown): the teardown path already released the
                # reservations — activating now would serve from freed GPUs.
                return
            replica.activate()
            self.metrics.on_event(
                ScalingEvent(
                    time=sim.now,
                    kind=event_kind,
                    detail=f"{replica.name} K={plan.n_stages}",
                    wait_time=wait_time,
                    init_time=sim.now - replica.created_at,
                    warm=warm,
                )
            )

        def part_done() -> None:
            state["remaining"] -= 1
            if state["remaining"] == 0:
                total = state["warm_bytes"] + state["cold_bytes"]
                warm = total > 0 and state["warm_bytes"] >= 0.5 * total
                overhead = self.startup_overhead * (
                    self.warm_startup_factor if warm else 1.0
                )
                sim.schedule(overhead, finish, warm)

        transfers: list[tuple] = []  # (link, nbytes, per-stream max rate)
        cm = self.ctx.cost_model
        for stage_plan, reservation in zip(plan.stages, reservations):
            server = reservation.gpu.server
            param_bytes = stage_plan.param_bytes
            warm = 0.0
            if self.warm_cache is not None:
                warm = self.warm_cache.coverage(
                    server, profile, stage_plan.start, stage_plan.end, sim.now
                )
            cold = max(param_bytes - warm, 0.0)
            state["warm_bytes"] += warm
            state["cold_bytes"] += cold
            # Per-stream rates reproduce the calibrated load-time curve when
            # uncontended; the shared links add contention on top.
            if warm > 0:
                rate = warm / cm.warm_load_time(warm)
                transfers.append((server.pcie, warm, rate))
            if cold > 0:
                duration = cm.cold_load_time(cold) / self.loading_speedup
                transfers.append((self.ctx.cluster.storage, cold, cold / duration))
            if self.warm_cache is not None:
                # Cache-through (§7): parameters stream via host memory, so
                # the host-side copy persists for future warm starts.
                self.warm_cache.put(
                    server,
                    profile.spec.name,
                    stage_plan.start,
                    stage_plan.end,
                    param_bytes,
                    sim.now,
                )
        if not transfers:
            # Everything already resident (e.g. zero-parameter test stages).
            state["remaining"] = 1
            sim.schedule(0.0, part_done)
            return
        state["remaining"] = len(transfers)
        for link, nbytes, rate in transfers:
            link.transfer(nbytes, part_done, max_rate=rate)

    # ------------------------------------------------------------------
    def _teardown(self, replica: PipelineReplica) -> None:
        """Release GPU reservations; keep parameters warm in host memory."""
        sim = self.ctx.sim
        model = replica.profile.spec.name
        # A deploy cancelled before activating (reclamation, shutdown or
        # preemption) stops being a pending claim here; preempted claims
        # already resolved and keep their "preempted" state.
        self.ctx.allocator.claim_resolved(replica.pending_claim, activated=False)
        self.routers[model].remove(replica)
        for stage in replica.stages:
            reservation = stage.reservation
            if reservation.released:
                continue
            if self.cache_on_release and self.warm_cache is not None:
                self.warm_cache.put(
                    reservation.gpu.server,
                    model,
                    stage.plan.start,
                    stage.plan.end,
                    stage.plan.param_bytes,
                    sim.now,
                )
            self.ctx.allocator.release(reservation)
        self.released += 1
        self.metrics.on_event(
            ScalingEvent(time=sim.now, kind="scale_in", detail=replica.name)
        )

    def release(self, replica: PipelineReplica) -> None:
        """Gracefully drain a replica (release happens when it empties)."""
        self.routers[replica.profile.spec.name].remove(replica)
        replica.drain()
