"""Base class shared by FlexPipe and every baseline system.

Owns the per-model routers, workload monitors, metric collection and the
queue/GPU-holding samplers, so that system implementations only differ in
*policy*: how they partition, place, scale and adapt.
"""

from __future__ import annotations

import abc
import math

from repro.core.context import ServingContext
from repro.metrics.collector import MetricsCollector, RunSummary
from repro.models.zoo import ModelSpec
from repro.pipeline.replica import ReplicaState
from repro.pipeline.router import ModelRouter
from repro.qos.classes import DEFAULT_CLASS, SLO_CLASSES, SLOClass, request_priority
from repro.qos.queueing import PriorityPendingQueue
from repro.qos.signals import AttainmentTracker
from repro.refactoring.monitor import WorkloadMonitor
from repro.simulation.processes import PeriodicProcess
from repro.workloads.requests import Request


class ServingSystem(abc.ABC):
    """A serving system instance bound to one simulated cluster."""

    name = "base"

    def __init__(
        self,
        ctx: ServingContext,
        model_specs: list[ModelSpec],
        *,
        queue_sample_interval: float = 0.25,
        cv_window: float = 30.0,
        cv_refresh: float = 0.5,
    ):
        if not model_specs:
            raise ValueError("serving system needs at least one model")
        self.ctx = ctx
        self.sim = ctx.sim
        self.specs = {spec.name: spec for spec in model_specs}
        self.profiles = {spec.name: ctx.profile(spec) for spec in model_specs}
        self.routers = {
            spec.name: ModelRouter(ctx.sim, spec.name) for spec in model_specs
        }
        self.monitors = {
            spec.name: WorkloadMonitor(window=cv_window) for spec in model_specs
        }
        self.metrics = MetricsCollector(self.name)
        # QoS control plane: disabled until enable_qos() installs the
        # class map and attainment tracker (all hooks no-op while None).
        self.qos_classes: dict[str, SLOClass] = {}
        self.qos_tracker: AttainmentTracker | None = None
        self._gpu_holding_integral = 0.0
        self._last_sample = ctx.sim.now
        self._epoch_start = ctx.sim.now
        # Max-over-monitors CV, recomputed at most once per ``cv_refresh``
        # of simulated time: the windowed CV estimate is O(window arrivals)
        # and consumers (Eq. 9 interference, placement scoring) query it on
        # every stage start — far more often than it meaningfully changes.
        self._cv_refresh = cv_refresh
        self._cv_cache = 0.0
        self._cv_cache_time = -math.inf
        self._sampler = PeriodicProcess(
            ctx.sim, queue_sample_interval, self._sample, start_delay=0.0
        )

    # ------------------------------------------------------------------
    def submit(self, request: Request) -> None:
        """Request ingress (the API-manager path of Fig. 5)."""
        if request.model not in self.routers:
            raise KeyError(f"{self.name} does not serve model {request.model!r}")
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.begin(request)
        self.metrics.on_submit(request)
        self.monitors[request.model].observe(self.sim.now)
        self.routers[request.model].submit(request)

    def _on_request_complete(self, request: Request) -> None:
        self.metrics.on_complete(request)
        if self.qos_tracker is not None:
            self.qos_tracker.observe_completion(request)

    # ------------------------------------------------------------------
    def enable_qos(
        self,
        classes: dict[str, SLOClass],
        *,
        aging: float | None = 10.0,
        attainment_window: float = 30.0,
        share_caps: dict[str, float] | None = None,
        elastic: bool = False,
    ) -> None:
        """Turn on the per-tenant QoS control plane.

        ``classes`` maps model names to their SLO class (absent tenants
        default to ``standard``).  The base layer installs the mechanisms
        every system shares — priority-aware pending queues on the
        routers (strict priority across classes, FIFO within, aging for
        anti-starvation), class-priority batch formation inside every
        replica, class-aware GPU arbitration at the allocator (priority
        contention with preempt-or-wait of lower-class pending deploys,
        plus per-tenant ``share_caps`` as max fractions of fleet GPU
        memory), and the per-tenant attainment tracker fed by completions
        — and records the class map for admission and observability.
        Adaptive systems (FlexPipe) extend this to wire the attainment
        signal into their scaling loops.
        """
        unknown = [m for m in classes if m not in self.routers]
        if unknown:
            raise KeyError(f"{self.name} does not serve model(s) {unknown}")
        unknown = [m for m in (share_caps or {}) if m not in self.routers]
        if unknown:
            raise KeyError(f"{self.name} does not serve model(s) {unknown}")
        self.qos_classes = dict(classes)
        self.qos_tracker = AttainmentTracker(
            lambda: self.sim.now, window=attainment_window
        )
        # Every router, including out-of-band pools (DistServe keys its
        # decode routers "<model>/decode"): a batch backlog in a decode
        # pool starves interactive work exactly like one in the primary
        # queue would.
        for name, router in self.all_routers().items():
            default = self.qos_class_of(name.split("/", 1)[0])
            router.use_priority_queue(
                PriorityPendingQueue(
                    lambda: self.sim.now,
                    lambda request, d=default: request_priority(request, d),
                    aging=aging,
                )
            )
        # Resource-layer arbitration: deploys carry their tenant's class
        # rank into the allocator — contending reservations resolve by
        # strict priority, an infeasible urgent deploy preempts lower-
        # class *pending* deploys (never ACTIVE replicas), and no tenant
        # may hold more than its share cap of fleet GPU memory.
        self.ctx.allocator.enable_arbitration(
            lambda model: self.qos_class_of(model).priority,
            share_caps=share_caps,
        )
        if elastic:
            # Elastic share contracts: caps become borrowable — a tenant
            # may exceed its cap into another capped tenant's idle
            # headroom, and a lender wanting its headroom back triggers
            # this system's reclaim hook (borrower excess drains first).
            self.ctx.allocator.enable_elastic_shares(
                clock=lambda: self.sim.now,
                reclaim=self._reclaim_borrower_excess,
            )
        # Class-priority batch formation inside the replica, mirroring the
        # router's priority queue: mixed-class traffic on one model meets
        # FIFO nowhere between admission and the GPU.
        def batch_priority(request: Request) -> int:
            return request_priority(request, self.qos_class_of(request.model))

        factory = getattr(self, "factory", None)
        if factory is not None:
            factory.batch_priority_of = batch_priority
            factory.batch_aging = aging
        for replica in self.all_replicas():
            if replica.state is not ReplicaState.RELEASED:
                replica.use_priority_batcher(batch_priority, aging=aging)

    def qos_class_of(self, model: str) -> SLOClass:
        """The tenant's SLO class (``standard`` when unannotated)."""
        return self.qos_classes.get(model, SLO_CLASSES[DEFAULT_CLASS])

    def _reclaim_borrower_excess(self, borrower: str, nbytes: float) -> None:
        """Elastic-contract reclaim: shed ``nbytes`` of a borrower's excess.

        Cheapest capacity goes first — still-loading deploys are cancelled
        (no served work lost), then the youngest ACTIVE replicas drain.
        Replicas already DRAINING count toward the demand (their bytes are
        on the way back), so a repeated demand never over-sheds.  Releases
        flow through the normal teardown path as in-flight work finishes,
        which is what bounds reclamation latency to the drain time.
        """
        remaining = nbytes
        loading, active = [], []
        for replica in self.all_replicas():
            if replica.profile.spec.name != borrower:
                continue
            live = sum(r.nbytes for r in replica.live_reservations())
            if replica.state is ReplicaState.DRAINING:
                remaining -= live
            elif replica.state is ReplicaState.LOADING:
                loading.append((replica, live))
            elif replica.state is ReplicaState.ACTIVE:
                active.append((replica, live))
        loading.sort(key=lambda pair: pair[0].created_at, reverse=True)
        active.sort(key=lambda pair: pair[0].activated_at or 0.0, reverse=True)
        factory = getattr(self, "factory", None)
        for replica, live in loading + active:
            if remaining <= 0.0:
                break
            if factory is not None:
                factory.release(replica)
            else:
                replica.drain()
            remaining -= live

    # ------------------------------------------------------------------
    def all_routers(self) -> dict[str, ModelRouter]:
        """Every router of this system, keyed by pool name.

        Systems with out-of-band pools (e.g. DistServe's decode routers)
        override this; failure injection, auditing and backlog signals
        all discover routers through it.
        """
        return dict(self.routers)

    def all_replicas(self) -> list:
        """Every replica this system ever created, id-deduplicated.

        Unions the factory registry (which alone knows LOADING and
        already-drained replicas) with router entries (which alone know
        replicas created outside a factory, e.g. in tests).  Failure
        injection and the invariant auditor both discover through this.
        """
        seen: dict[int, object] = {}
        factory = getattr(self, "factory", None)
        if factory is not None:
            for replica in factory.replicas:
                seen[id(replica)] = replica
        for router in self.all_routers().values():
            for replica in router.replicas:
                seen.setdefault(id(replica), replica)
        return list(seen.values())

    # ------------------------------------------------------------------
    def on_gpu_reclaimed(self, gpu) -> None:
        """Platform notification: ``gpu`` was just cordoned for reclamation.

        Base systems hold no state outside their replicas (which the
        injector drains itself); FlexPipe overrides this to abort in-flight
        refactor transitions whose *prepared* reservations sit on the
        victim, releasing that memory inside the downtime window.
        """

    # ------------------------------------------------------------------
    def max_cv(self) -> float:
        """Largest per-model inter-arrival CV, cached per refresh interval."""
        now = self.sim.now
        if now - self._cv_cache_time >= self._cv_refresh:
            self._cv_cache = max(
                (m.cv(now) for m in self.monitors.values()), default=0.0
            )
            self._cv_cache_time = now
        return self._cv_cache

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        now = self.sim.now
        waiting = sum(r.waiting_count for r in self.routers.values())
        self.metrics.sample_queue(now, waiting)
        dt = now - self._last_sample
        if dt > 0:
            self._gpu_holding_integral += self.ctx.allocator.gpus_in_use() * dt
        self._last_sample = now

    # ------------------------------------------------------------------
    def reset_measurement_epoch(self) -> None:
        """Zero utilization counters at the start of the measured window."""
        for gpu in self.ctx.cluster.gpus:
            gpu.busy_seconds = 0.0
        self._gpu_holding_integral = 0.0
        self._last_sample = self.sim.now
        self._epoch_start = self.sim.now

    def summarize(self, duration: float) -> RunSummary:
        busy = sum(g.busy_seconds for g in self.ctx.cluster.gpus)
        avg_gpus = self._gpu_holding_integral / duration if duration > 0 else 0.0
        return self.metrics.summarize(
            duration,
            gpu_busy_seconds=busy,
            gpus_used=max(round(avg_gpus), 1),
            total_gpus=self.ctx.cluster.gpu_count,
            measure_from=self._epoch_start,
        )

    def shutdown(self) -> None:
        """Stop periodic processes and drain every live replica.

        Draining (not dropping) preserves in-flight work; once the
        simulator quiesces, every :class:`StageReservation` must be back
        with the allocator — the auditor's no-leak invariant.  Subclasses
        extend this to stop their own control loops.
        """
        self._sampler.stop()
        factory = getattr(self, "factory", None)
        if factory is not None:
            for replica in factory.live_replicas():
                factory.release(replica)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def start(self) -> None:
        """Deploy initial replicas; called once before the workload starts."""
