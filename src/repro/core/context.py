"""Shared per-run context: simulator, cluster, profiles, caches.

Model graphs, profiles and granularity ladders are immutable and costly to
build (the Eq. 2 DP over ~450 operators), so they are cached at module
level keyed by (model, cost-config, stage set) and shared across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.allocator import GPUAllocator
from repro.cluster.cluster import Cluster
from repro.cluster.hrg import HierarchicalResourceGraph
from repro.models.costs import CostModel, CostModelConfig
from repro.models.graph import ComputationGraph
from repro.models.profiler import ModelProfile
from repro.models.transformer import build_transformer
from repro.models.zoo import ModelSpec
from repro.partitioning.ladder import GranularityLadder
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.transfer.datamover import DataMover

_GRAPH_CACHE: dict[str, ComputationGraph] = {}
_PROFILE_CACHE: dict[tuple, ModelProfile] = {}
_LADDER_CACHE: dict[tuple, GranularityLadder] = {}


def get_graph(spec: ModelSpec) -> ComputationGraph:
    graph = _GRAPH_CACHE.get(spec.name)
    if graph is None:
        graph = build_transformer(spec)
        _GRAPH_CACHE[spec.name] = graph
    return graph


def get_profile(spec: ModelSpec, cost_model: CostModel) -> ModelProfile:
    key = (spec.name, cost_model.config)
    profile = _PROFILE_CACHE.get(key)
    if profile is None:
        profile = ModelProfile(
            spec=spec, graph=get_graph(spec), cost_model=cost_model
        )
        _PROFILE_CACHE[key] = profile
    return profile


def get_ladder(
    spec: ModelSpec, cost_model: CostModel, stage_counts: tuple[int, ...]
) -> GranularityLadder:
    key = (spec.name, cost_model.config, tuple(stage_counts))
    ladder = _LADDER_CACHE.get(key)
    if ladder is None:
        ladder = GranularityLadder(
            get_profile(spec, cost_model), stage_counts=stage_counts
        )
        _LADDER_CACHE[key] = ladder
    return ladder


@dataclass
class ServingContext:
    """Everything a serving system needs from its environment."""

    sim: Simulator
    cluster: Cluster
    streams: RandomStreams
    cost_model: CostModel
    allocator: GPUAllocator
    hrg: HierarchicalResourceGraph
    data_mover: DataMover

    @classmethod
    def create(
        cls,
        sim: Simulator,
        cluster: Cluster,
        streams: RandomStreams,
        *,
        cost_config: CostModelConfig | None = None,
    ) -> "ServingContext":
        cost_model = CostModel(cost_config)
        return cls(
            sim=sim,
            cluster=cluster,
            streams=streams,
            cost_model=cost_model,
            allocator=GPUAllocator(cluster),
            hrg=HierarchicalResourceGraph(cluster),
            data_mover=DataMover(),
        )

    # ------------------------------------------------------------------
    def profile(self, spec: ModelSpec) -> ModelProfile:
        return get_profile(spec, self.cost_model)

    def ladder(
        self, spec: ModelSpec, stage_counts: tuple[int, ...] = (2, 4, 8, 16, 32)
    ) -> GranularityLadder:
        return get_ladder(spec, self.cost_model, stage_counts)
