"""FlexPipe configuration: every paper hyper-parameter in one place."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FlexPipeConfig:
    """Knobs for the controller, policies and scaling machinery.

    Defaults follow the paper where stated (decision latency < 5 ms,
    always-on fraction 30%, CV set-points from Insight 3's S ∝ √CV rule);
    time constants are scaled to simulation-friendly values and noted.
    """

    # --- controller (Algorithm 1) ---
    control_interval: float = 1.0
    decision_latency: float = 0.002  # "<5ms across 2-32 stages" (§6.3)
    cv_window: float = 30.0  # sliding window for ν_t

    # --- granularity policy (Eq. 4) ---
    alpha_tradeoff: float = 0.5  # α: throughput-latency weight
    sigma_sensitivity: float = 1.2  # σ: CV-matching sharpness
    # ν_k = (η_k / scale)²: the Insight-3 law S ∝ sqrt(CV), with the
    # constant calibrated to this substrate (the paper's testbed constant
    # is 8; our cost model's comm/compute balance puts the optimum at 4).
    cv_setpoint_scale: float = 4.0
    stage_counts: tuple[int, ...] = (2, 4, 8, 16, 32)
    initial_stages: int = 4
    switch_margin: float = 1.35  # hysteresis: new score must win decisively
    refactor_dwell: float = 20.0  # min seconds between refactors per model

    # --- instance counts (Eq. 5) ---
    beta1: float = 1.0  # coordination overhead intercept
    beta2: float = 0.02  # per-stage coordination overhead
    target_utilization: float = 0.6  # capacity headroom for μ_total

    # --- hardware efficiency / multiplexing penalty (Eq. 9) ---
    gamma0: float = 0.08  # base multiplexing penalty
    alpha_mux: float = 0.25  # CV² sensitivity

    # --- adaptive scaling (Eq. 11-12) ---
    g_max: int = 32  # finest scaling granularity
    beta_sigmoid: float = 40.0  # β in Eq. 11
    gamma_sigmoid: float = 10.0  # γ in Eq. 11
    queue_capacity: int = 512  # Q_max for q̂ normalisation
    scale_out_queue_factor: float = 1.5  # queue > factor×capacity ⇒ scale out
    scale_in_idle_window: float = 300.0  # paper's 5-minute reclamation window (§9.4)
    min_replicas: int = 1
    max_replicas: int = 16
    # Eq. 12 burst-feasibility headroom: target utilization divides by
    # (1 + cv_headroom * CV), holding spare capacity under bursty load.
    cv_headroom: float = 0.25

    # --- affinity scheduling (Eq. 13) ---
    affinity_w_t: float = 1.0
    affinity_w_g: float = 0.25
    affinity_decay: float = 1.0 / 120.0  # λ: temporal decay of warm hosts

    # --- provisioning ---
    always_on_fraction: float = 0.30  # paper: 30% of peak always-ready
    batcher_max_wait: float = 0.3

    def __post_init__(self) -> None:
        if not 0 <= self.alpha_tradeoff <= 1:
            raise ValueError("alpha_tradeoff must be in [0, 1]")
        if self.control_interval <= 0:
            raise ValueError("control_interval must be positive")
        if self.initial_stages not in self.stage_counts:
            raise ValueError(
                f"initial_stages {self.initial_stages} not in {self.stage_counts}"
            )
