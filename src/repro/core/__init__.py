"""FlexPipe core: configuration, serving-system base, and the controller.

``FlexPipeSystem`` composes the three innovations (fine-grained
partitioning, inflight refactoring, adaptive scaling) over the shared
substrate; the baselines in ``repro.baselines`` reuse the same base class
and deployment machinery so comparisons isolate *policy* differences.
"""

from repro.core.config import FlexPipeConfig
from repro.core.context import ServingContext
from repro.core.serving import ServingSystem
from repro.core.deployment import ReplicaFactory
from repro.core.flexpipe import FlexPipeSystem
from repro.core.admission import (
    AdmissionGate,
    AdmissionPolicy,
    AlwaysAdmit,
    QueueCapPolicy,
    SLOFeasiblePolicy,
    TokenBucketPolicy,
)

__all__ = [
    "FlexPipeConfig",
    "ServingContext",
    "ServingSystem",
    "ReplicaFactory",
    "FlexPipeSystem",
    "AdmissionGate",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "QueueCapPolicy",
    "SLOFeasiblePolicy",
    "TokenBucketPolicy",
]
