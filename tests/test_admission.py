"""Tests for admission control (goodput protection under overload)."""

from __future__ import annotations

import pytest

from repro.core.admission import (
    AdmissionGate,
    AlwaysAdmit,
    QueueCapPolicy,
    SLOFeasiblePolicy,
    TokenBucketPolicy,
)
from repro.workloads.requests import Request


def make_request(rid=0, t=0.0, slo=5.0, slo_class=None):
    return Request(
        rid=rid,
        model="m",
        arrival_time=t,
        prompt_tokens=100,
        output_tokens=10,
        slo_latency=slo,
        slo_class=slo_class,
    )


class TestGate:
    def test_always_admit_passes_everything(self):
        seen = []
        gate = AdmissionGate(seen.append)
        for i in range(5):
            gate.submit(make_request(i))
        assert len(seen) == 5
        assert gate.stats.admitted == 5
        assert gate.stats.rejection_rate == 0.0

    def test_rejected_requests_marked_and_counted(self):
        seen = []
        rejected = []
        gate = AdmissionGate(
            seen.append, QueueCapPolicy(lambda: 100, cap=10), on_reject=rejected.append
        )
        request = make_request()
        gate.submit(request)
        assert seen == []
        assert rejected == [request]
        assert request.rejected
        assert gate.stats.rejection_rate == 1.0

    def test_stats_track_mixed_stream(self):
        queue = {"n": 0}
        gate = AdmissionGate(
            lambda r: None, QueueCapPolicy(lambda: queue["n"], cap=5)
        )
        for i in range(10):
            queue["n"] = i  # queue grows past the cap halfway through
            gate.submit(make_request(i))
        assert gate.stats.offered == 10
        assert gate.stats.admitted == 6  # queue 0..5 admitted
        assert gate.stats.rejected == 4


class TestQueueCap:
    def test_boundary_inclusive(self):
        policy = QueueCapPolicy(lambda: 5, cap=5)
        assert policy.admit(make_request())

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            QueueCapPolicy(lambda: 0, cap=-1)


class TestSLOFeasible:
    def make_policy(self, queue=0, capacity=10.0, service=1.0, headroom=1.0):
        return SLOFeasiblePolicy(
            lambda: queue,
            lambda: capacity,
            lambda r: service,
            headroom=headroom,
        )

    def test_admits_when_deadline_reachable(self):
        policy = self.make_policy(queue=10, capacity=10.0, service=1.0)
        assert policy.admit(make_request(slo=5.0))  # 1s wait + 1s service

    def test_rejects_unreachable_deadline(self):
        policy = self.make_policy(queue=100, capacity=10.0, service=1.0)
        assert not policy.admit(make_request(slo=5.0))  # 10s wait

    def test_headroom_shifts_the_boundary(self):
        tight = self.make_policy(queue=45, capacity=10.0, service=0.5, headroom=0.8)
        loose = self.make_policy(queue=45, capacity=10.0, service=0.5, headroom=1.5)
        request = make_request(slo=5.0)  # estimate = 5.0 exactly
        assert not tight.admit(request)
        assert loose.admit(request)

    def test_zero_capacity_rejects(self):
        policy = self.make_policy(queue=1, capacity=0.0)
        assert not policy.admit(make_request(slo=5.0))

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError, match="headroom"):
            self.make_policy(headroom=0.0)

    def test_classed_request_judged_against_its_own_class_deadline(self):
        """Regression (QoS): a batch-class request whose sampler froze an
        interactive-grade slo_latency must be admitted while its *class*
        deadline (30 s) is feasible — not shed against the 2.5 s target
        it was never promised."""
        policy = self.make_policy(queue=100, capacity=10.0, service=1.0)
        assert policy.admit(make_request(slo=2.5, slo_class="batch"))
        assert not policy.admit(make_request(slo=2.5))


class TestTokenBucket:
    def test_burst_then_throttle(self):
        policy = TokenBucketPolicy(rate=1.0, burst=3.0)
        # Three arrivals at t=0 drain the bucket; the fourth is shed.
        results = [policy.admit(make_request(i, t=0.0)) for i in range(4)]
        assert results == [True, True, True, False]

    def test_tokens_refill_over_time(self):
        policy = TokenBucketPolicy(rate=1.0, burst=1.0)
        assert policy.admit(make_request(0, t=0.0))
        assert not policy.admit(make_request(1, t=0.2))
        assert policy.admit(make_request(2, t=1.5))  # refilled

    def test_bucket_never_exceeds_burst(self):
        policy = TokenBucketPolicy(rate=100.0, burst=2.0)
        policy.admit(make_request(0, t=0.0))
        # Long idle: tokens cap at burst=2, so only two admits back-to-back.
        results = [policy.admit(make_request(i, t=100.0)) for i in range(1, 4)]
        assert results == [True, True, False]

    def test_sustained_rate_approximates_target(self):
        policy = TokenBucketPolicy(rate=5.0, burst=5.0)
        admitted = sum(
            policy.admit(make_request(i, t=i * 0.05)) for i in range(400)
        )  # offered at 20/s for 20s
        # With burst headroom the long-run admit rate tracks the token rate
        # (tight bucket caps drop fractional refills at the cap boundary).
        assert admitted == pytest.approx(5.0 * 20.0, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError, match="rate"):
            TokenBucketPolicy(rate=0.0, burst=1.0)
        with pytest.raises(ValueError, match="burst"):
            TokenBucketPolicy(rate=1.0, burst=0.5)


class TestEndToEndGoodputProtection:
    def test_slo_gate_improves_goodput_under_overload(self):
        """The reason admission control exists: shed infeasible work."""
        # A toy single-server queue: capacity 1 req/s, service 1 s.
        completed: list[Request] = []
        clock = {"free_at": 0.0, "now": 0.0}

        def serve(request: Request) -> None:
            start = max(request.arrival_time, clock["free_at"])
            finish = start + 1.0
            clock["free_at"] = finish
            request.completion_time = finish
            completed.append(request)

        def run(policy) -> float:
            completed.clear()
            clock["free_at"] = 0.0
            gate = AdmissionGate(serve, policy)
            for i in range(40):  # 2 req/s offered for 20 s: 2x overload
                clock["now"] = i * 0.5
                gate.submit(make_request(i, t=clock["now"], slo=3.0))
            good = sum(
                1
                for r in completed
                if r.completion_time - r.arrival_time <= r.slo_latency
            )
            return good / 40.0

        # Backlog in "requests" = seconds of queued work at 1 req/s.
        ungated = run(AlwaysAdmit())
        gated = run(
            SLOFeasiblePolicy(
                lambda: max(clock["free_at"] - clock["now"], 0.0),
                lambda: 1.0,
                lambda r: 1.0,
            )
        )
        # Without the gate almost everything finishes late; with it the
        # feasible fraction completes on time.
        assert gated > ungated
        assert gated >= 0.4
