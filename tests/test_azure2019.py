"""AzureFunctionsDataset2019 ingestion: parsing, minting, zoo mapping.

The tentpole contract: the real 2019 format streams through
``load_window`` in bounded memory, arrivals mint lazily (the full
request list never materialises), the volume-tiered zoo mapping is a
deterministic function of (window, seed), and the production-scale
``azure-replay-2019`` scenario replays a >= 1-hour window with >= 200
tenants, zero violations, byte-identically at any shard count.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import pathlib

import numpy as np
import pytest

from repro.scenarios.driver import (
    ScenarioCase,
    run_scenario_case,
    scenario_cache_key,
)
from repro.scenarios.library import SCENARIOS, _azure2019_fleet
from repro.scenarios.sharding import partition_scenario
from repro.scenarios.spec import ArrivalSegment, ModelScript, ScenarioSpec
from repro.workloads.arrivals import ReplayArrivals
from repro.workloads.azure2019 import (
    INVOCATION_HEADER,
    Azure2019Source,
    MintStats,
    dataset_fingerprint,
    iter_minted_stamps,
    load_window,
    map_functions_to_zoo,
    synthesize_2019_dataset,
    write_2019_dataset,
)

WINDOW = Azure2019Source(start_minute=480, end_minute=570, top_k=220)


def _write_invocations(
    path: pathlib.Path, rows: list[list], n_minutes: int = 60
) -> None:
    header = INVOCATION_HEADER + [str(m) for m in range(1, n_minutes + 1)]
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def _row(owner, app, fn, minute_counts):
    return [owner, app, fn, "http", *[str(c) for c in minute_counts]]


# ----------------------------------------------------------------------
# Parser edge cases (hand-written day files)
# ----------------------------------------------------------------------
def test_malformed_rows_counted_and_skipped(tmp_path):
    good = _row("o1", "a1", "f1", [3] * 60)
    short_identity = ["o2", "a2"]  # fewer than four identity columns
    empty_hash = _row("", "a3", "f3", [1] * 60)
    negative = _row("o4", "a4", "f4", [-1] + [0] * 59)
    non_integer = _row("o5", "a5", "f5", ["x"] + [0] * 59)
    _write_invocations(
        tmp_path / "invocations_per_function_md.anon.d01.csv",
        [good, short_identity, empty_hash, negative, non_integer],
    )
    window = load_window(
        Azure2019Source(dataset_dir=str(tmp_path), start_minute=0, end_minute=60)
    )
    assert [f.key for f in window.functions] == ["o1/a1/f1"]
    assert window.stats.rows == 5
    assert window.stats.malformed == 4


def test_missing_minutes_read_as_zero(tmp_path):
    # A row shorter than the nominal 1440 columns is the trace ending
    # early, not corruption: absent minutes are zero invocations.
    short_row = _row("o1", "a1", "f1", [5] * 10)  # only 10 of 60 minutes
    _write_invocations(
        tmp_path / "invocations_per_function_md.anon.d01.csv", [short_row]
    )
    window = load_window(
        Azure2019Source(dataset_dir=str(tmp_path), start_minute=0, end_minute=60)
    )
    assert window.stats.malformed == 0
    fn = window.functions[0]
    assert fn.total == 50
    assert list(fn.counts[:10]) == [5] * 10
    assert not fn.counts[10:].any()


def test_missing_day_files_are_zero_not_crash(tmp_path):
    # Window spans days 1-2 but only d01 exists on disk.
    _write_invocations(
        tmp_path / "invocations_per_function_md.anon.d01.csv",
        [_row("o1", "a1", "f1", [2] * 1440)],
        n_minutes=1440,
    )
    source = Azure2019Source(
        dataset_dir=str(tmp_path), start_minute=1430, end_minute=1500
    )
    window = load_window(source)
    assert list(source.days) == [1, 2]
    assert window.stats.missing_files == 1
    fn = window.functions[0]
    # Minutes [1430, 1440) come from d01's last 10 columns; the rest of
    # the window belongs to the absent d02 and reads zero.
    assert fn.counts.shape[0] == 70
    assert fn.total == 2 * 10


def test_duplicate_hashes_merge_within_one_file(tmp_path):
    _write_invocations(
        tmp_path / "invocations_per_function_md.anon.d01.csv",
        [
            _row("o1", "a1", "f1", [1] * 60),
            _row("o1", "a1", "f1", [2] * 60),  # same key again: merge
            _row("o2", "a2", "f2", [9] * 60),
        ],
    )
    window = load_window(
        Azure2019Source(dataset_dir=str(tmp_path), start_minute=0, end_minute=60)
    )
    assert window.stats.duplicates == 1
    assert window.function("o1/a1/f1").total == 60 * 3


def test_empty_window_and_zero_volume_functions_never_rank(tmp_path):
    _write_invocations(
        tmp_path / "invocations_per_function_md.anon.d01.csv",
        [
            _row("o1", "a1", "f1", [0] * 60),  # zero volume: never ranks
            _row("o2", "a2", "f2", [1] * 60),
        ],
    )
    window = load_window(
        Azure2019Source(dataset_dir=str(tmp_path), start_minute=0, end_minute=60)
    )
    assert [f.key for f in window.functions] == ["o2/a2/f2"]
    with pytest.raises(ValueError, match="non-empty"):
        Azure2019Source(start_minute=60, end_minute=60)


def test_not_an_invocation_file_is_rejected(tmp_path):
    path = tmp_path / "invocations_per_function_md.anon.d01.csv"
    path.write_text("wrong,header,entirely\n1,2,3\n")
    with pytest.raises(ValueError, match="not a 2019 invocation file"):
        load_window(
            Azure2019Source(
                dataset_dir=str(tmp_path), start_minute=0, end_minute=60
            )
        )


# ----------------------------------------------------------------------
# Fixture <-> real-format file round-trip
# ----------------------------------------------------------------------
def test_written_fixture_reads_back_identically(tmp_path):
    dataset = synthesize_2019_dataset(seed=7, n_functions=40)
    write_2019_dataset(tmp_path, dataset)
    source = Azure2019Source(
        dataset_dir=str(tmp_path), start_minute=400, end_minute=520, top_k=25
    )
    from_files = load_window(source)
    assert len(from_files.functions) == 25
    assert from_files.stats.malformed == 0
    assert from_files.stats.duplicates == 0
    # The file path must agree with the in-memory fixture columns.
    lo, hi = source.start_minute, source.end_minute
    totals = {
        "/".join(
            (dataset.owners[i], dataset.apps[i], dataset.functions[i])
        ): int(dataset.counts[i, lo:hi].sum())
        for i in range(len(dataset.functions))
    }
    for fn in from_files.functions:
        assert fn.total == totals[fn.key]
        assert fn.avg_duration_ms is not None
        assert fn.avg_memory_mb is not None
    ranked = [f.total for f in from_files.functions]
    assert ranked == sorted(ranked, reverse=True)


def test_fingerprint_tracks_dataset_bytes(tmp_path):
    assert dataset_fingerprint(WINDOW).startswith("fixture-v")
    write_2019_dataset(tmp_path, synthesize_2019_dataset(seed=3, n_functions=10))
    source = Azure2019Source(
        dataset_dir=str(tmp_path), start_minute=0, end_minute=60
    )
    before = dataset_fingerprint(source)
    path = tmp_path / "invocations_per_function_md.anon.d01.csv"
    path.write_text(path.read_text() + "o,a,f,http," + "1," * 59 + "1\n")
    assert dataset_fingerprint(source) != before


# ----------------------------------------------------------------------
# Streaming mint: the memory property
# ----------------------------------------------------------------------
def test_mint_is_streaming_peak_bounded_by_one_minute():
    counts = np.array([100, 0, 7, 3000, 12], dtype=np.int64)
    stats = MintStats()
    stream = iter_minted_stamps(counts, stats=stats)
    arrivals = ReplayArrivals(stream)
    # The streaming witness: a generator input never materialises the
    # timestamp list (the sized path would have sorted it into a list).
    assert arrivals.timestamps is None
    drained = []
    while True:
        gap = arrivals.next_interarrival()
        if gap == float("inf"):
            break
        drained.append(gap)
    assert len(drained) == int(counts.sum())
    # Peak resident stamps == the busiest minute's mint, not the window.
    assert stats.peak_buffered == 3000
    assert stats.total == int(counts.sum())
    assert stats.minutes == int((counts > 0).sum())


def test_mint_stamps_are_deterministic_sorted_and_scaled():
    counts = np.array([3, 0, 2])
    once = list(iter_minted_stamps(counts, scale=0.5))
    again = list(iter_minted_stamps(counts, scale=0.5))
    assert once == again  # no RNG anywhere in the mint
    assert once == sorted(once)
    # 3 minutes of trace at scale 0.5 -> stamps inside [0, 90).
    assert 0.0 <= once[0] and once[-1] < 3 * 60.0 * 0.5
    # Minute 2's stamps land at (120 + linspace(0, 60, 2)) * 0.5.
    assert once[-2:] == [60.0, 75.0]


# ----------------------------------------------------------------------
# Volume-tiered zoo mapping
# ----------------------------------------------------------------------
def test_zoo_mapping_is_deterministic_and_volume_tiered():
    window = load_window(WINDOW)
    assert len(window.functions) == 220
    a = map_functions_to_zoo(window)
    assert a == map_functions_to_zoo(window)
    assert a != map_functions_to_zoo(window, zoo_seed=1)
    n = len(a)
    sizes = [float(x.model.rsplit("-", 1)[1][:-1]) for x in a]
    for rank, size in enumerate(sizes):
        tier = rank / n
        expected = (
            (4.0, 5.0)
            if tier < 0.25
            else (6.0, 7.0) if tier < 0.75 else (9.0, 12.0)
        )
        assert size in expected
    assert all(x.output_median in (4, 16, 32) for x in a)
    # Heavy head on small hot models, long tail on the big checkpoints.
    assert sizes[0] < sizes[-1]


# ----------------------------------------------------------------------
# Spec plumbing
# ----------------------------------------------------------------------
def test_azure2019_spec_round_trips_through_json():
    spec = SCENARIOS["azure-replay-2019"]
    assert spec.azure2019 == WINDOW.__class__(**dataclasses.asdict(WINDOW))
    rebuilt = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    assert rebuilt.azure2019 == spec.azure2019


def test_azure2019_segment_validation():
    with pytest.raises(ValueError, match="trace_function"):
        ModelScript(
            "FLEET-0-5g",
            segments=(ArrivalSegment("azure2019", duration=10.0, qps=1.0),),
        )
    with pytest.raises(ValueError, match="trace_function"):
        ModelScript(
            "FLEET-0-5g",
            segments=(
                ArrivalSegment(
                    "steady", duration=10.0, qps=1.0, trace_function="x/y/z"
                ),
            ),
        )
    with pytest.raises(ValueError, match="azure2019"):
        ScenarioSpec(
            name="no-source",
            models=(
                ModelScript(
                    "FLEET-0-5g",
                    segments=(
                        ArrivalSegment(
                            "azure2019",
                            duration=10.0,
                            qps=1.0,
                            trace_function="x/y/z",
                        ),
                    ),
                ),
            ),
        )


def test_cache_key_carries_the_dataset_fingerprint(tmp_path):
    spec = SCENARIOS["azure-replay-2019"]
    case = ScenarioCase(spec, "FlexPipe", 0)
    base = scenario_cache_key(case, "codeprint")
    assert base == scenario_cache_key(case, "codeprint")
    # Same spec shape, different trace window -> different cell.
    other = dataclasses.replace(
        spec,
        azure2019=dataclasses.replace(spec.azure2019, end_minute=571),
    )
    assert scenario_cache_key(
        ScenarioCase(other, "FlexPipe", 0), "codeprint"
    ) != base


# ----------------------------------------------------------------------
# The production-scale scenario
# ----------------------------------------------------------------------
def test_azure_replay_2019_partition_is_pure_and_covers_the_fleet():
    spec = SCENARIOS["azure-replay-2019"]
    assert len(spec.models) >= 200
    plan = partition_scenario(spec, seed=0)
    again = partition_scenario(spec, seed=0)
    assert not plan.fallback
    assert [
        (g.models, g.server_indices, g.seed) for g in plan.groups
    ] == [(g.models, g.server_indices, g.seed) for g in again.groups]
    # Hundreds of tenants on tens of servers: packed multi-tenant groups.
    assert 2 <= len(plan.groups) < len(spec.models)
    covered = [m for g in plan.groups for m in g.models]
    assert sorted(covered) == sorted(spec.model_names)
    servers = [i for g in plan.groups for i in g.server_indices]
    assert len(servers) == len(set(servers))


def test_azure_replay_2019_quick_replays_the_window():
    """The acceptance gate: >= 1 h window, >= 200 tenants, no violations."""
    spec = SCENARIOS["azure-replay-2019"]
    assert spec.azure2019.window_seconds >= 3600.0
    window = load_window(spec.azure2019)
    report = run_scenario_case(ScenarioCase(spec.quick(), "FlexPipe", 0))
    assert report.ok, [v.detail for v in report.violations]
    assert len(report.tenants) >= 200
    assert report.offered == window.total  # every trace invocation minted
    assert report.completed > 0
    assert report.offered == report.completed + report.shed + sum(
        t.admitted - t.completed for t in report.tenants.values()
    )


def test_azure2019_sharded_replay_is_shard_count_invariant():
    """Byte-identical reports at 1/2 workers through packed groups."""
    source = Azure2019Source(
        start_minute=480, end_minute=570, top_k=8, zoo_seed=0
    )
    spec = dataclasses.replace(
        SCENARIOS["azure-replay-2019"],
        name="azure-replay-2019-mini",
        models=_azure2019_fleet(source, duration=60.0),
        azure2019=source,
        cluster="small",
        admission_cap=128,
        events=(),
    ).quick()
    plan = partition_scenario(spec, seed=0)
    assert len(plan.groups) == 2  # 8 tenants packed onto 8 servers
    assert all(len(g.models) > 1 for g in plan.groups)
    blobs = {}
    for workers in (1, 2):
        report = run_scenario_case(ScenarioCase(spec, "FlexPipe", 0, workers))
        blobs[workers] = json.dumps(
            dataclasses.asdict(report), sort_keys=True, default=repr
        )
        assert report.ok, [v.detail for v in report.violations]
        assert report.shards == 2
    assert blobs[1] == blobs[2]
