"""Declarative scenario engine: spec round-trips, driver behaviour,
catalog coverage, and runner determinism/caching (tier-1, fixed seeds)."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.runner import ExperimentRunner
from repro.scenarios import (
    SCENARIOS,
    ArrivalSegment,
    ModelScript,
    ScenarioCase,
    ScenarioEvent,
    ScenarioSpec,
    get_scenario,
    run_scenario_case,
    run_scenarios,
)
from repro.validation.chaos import CHAOS_SYSTEMS

# A small, fast scenario exercising every segment kind and several event
# actions — the workhorse of the driver tests below.
MINI = ScenarioSpec(
    name="mini",
    cluster="small",
    settle=60.0,
    drain=10.0,
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(
                ArrivalSegment("steady", start=0.0, duration=20.0, qps=5.0),
                ArrivalSegment("burst", start=8.0, duration=8.0, qps=6.0, cv=4.0),
            ),
        ),
        ModelScript(
            "WHISPER-9B",
            segments=(
                ArrivalSegment(
                    "diurnal", start=4.0, duration=12.0, qps=3.0, period=10.0
                ),
                ArrivalSegment("replay", start=16.0, duration=6.0, qps=3.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=6.0, action="reclaim"),
        ScenarioEvent(at=10.0, action="scale_out", model="LLAMA2-7B"),
        ScenarioEvent(at=14.0, action="refactor", model="LLAMA2-7B"),
        ScenarioEvent(at=18.0, action="drain"),
    ),
    admission_cap=64,
)


# ----------------------------------------------------------------------
# Spec: validation + serialisation
# ----------------------------------------------------------------------
class TestScenarioSpec:
    def test_json_round_trip_is_lossless(self):
        for spec in (MINI, *SCENARIOS.values()):
            assert ScenarioSpec.from_json(spec.to_json()) == spec

    def test_duration_covers_segments_and_events(self):
        assert MINI.duration == pytest.approx(22.0)  # last segment end
        late_event = ScenarioSpec(
            name="late",
            models=(ModelScript("LLAMA2-7B"),),
            events=(ScenarioEvent(at=50.0, action="reclaim"),),
        )
        assert late_event.duration == pytest.approx(51.0)
        assert late_event.horizon == pytest.approx(60.0 + 51.0 + 20.0)

    def test_quick_preserves_shape(self):
        quick = MINI.quick(2.0)
        assert quick.name == "mini-quick"
        # One uniform factor, capped so the shortest segment (6 s replay)
        # stays >= 5 s: effective = min(2, 6/5) = 1.2.
        assert quick.duration == pytest.approx(MINI.duration / 1.2)
        assert quick.duration < MINI.duration
        assert quick.settle == MINI.settle  # load times do not compress
        assert [e.action for e in quick.events] == [
            e.action for e in MINI.events
        ]
        assert quick.events[0].at == pytest.approx(6.0 / 1.2)

    def test_quick_scaling_is_uniform_so_phasing_survives(self):
        """Sequential phases must stay sequential and deliberate overlaps
        must stay overlaps — quick() scales all times by one factor."""
        for spec in SCENARIOS.values():
            quick = spec.quick()
            for model, model_q in zip(spec.models, quick.models):
                ratios = {
                    round(s.start / q.start, 9)
                    for s, q in zip(model.segments, model_q.segments)
                    if q.start > 0
                } | {
                    round(s.duration / q.duration, 9)
                    for s, q in zip(model.segments, model_q.segments)
                }
                assert len(ratios) == 1, (spec.name, model.model, ratios)
        # The cold-start wave's contiguous phases remain contiguous.
        wave = SCENARIOS["coldstart-wave"].quick()
        segs = sorted(wave.models[0].segments, key=lambda s: s.start)
        for a, b in zip(segs, segs[1:]):
            assert b.start == pytest.approx(a.end)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="nope"),
            dict(duration=0.0),
            dict(start=-1.0),
            dict(qps=0.0),
            dict(cv=-1.0),
            dict(kind="diurnal", amplitude=1.0),
            dict(kind="diurnal", period=0.0),
            dict(kind="burst", burst_cycle=0.0),
            dict(kind="burst", cv=1.0),
        ],
    )
    def test_bad_segments_rejected(self, bad):
        with pytest.raises(ValueError):
            ArrivalSegment(**bad)

    def test_bad_events_and_specs_rejected(self):
        with pytest.raises(ValueError):
            ScenarioEvent(at=1.0, action="nuke")
        with pytest.raises(ValueError):
            ScenarioEvent(at=-1.0, action="drain")
        with pytest.raises(ValueError):
            ScenarioSpec(name="empty", models=())
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="dup",
                models=(ModelScript("LLAMA2-7B"), ModelScript("LLAMA2-7B")),
            )
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="bad-cluster",
                models=(ModelScript("LLAMA2-7B"),),
                cluster="warehouse",
            )
        with pytest.raises(ValueError):
            ModelScript("NoSuchModel")
        with pytest.raises(ValueError, match="not in the fleet"):
            ScenarioSpec(
                name="typo-event",
                models=(ModelScript("LLAMA2-7B"),),
                events=(ScenarioEvent(at=1.0, action="drain", model="WHISPER9B"),),
            )

    def test_catalog_lookup(self):
        assert get_scenario("tenant-churn").name == "tenant-churn"
        with pytest.raises(KeyError, match="available"):
            get_scenario("nope")

    def test_catalog_has_required_breadth(self):
        assert len(SCENARIOS) >= 6
        assert any(s.cluster == "paper" for s in SCENARIOS.values())
        assert any(
            len(s.models) >= 3 for s in SCENARIOS.values()
        ), "catalog needs a >=3-tenant scenario"
        kinds = {
            seg.kind
            for s in SCENARIOS.values()
            for m in s.models
            for seg in m.segments
        }
        assert {"steady", "burst", "diurnal", "replay"} <= kinds
        actions = {e.action for s in SCENARIOS.values() for e in s.events}
        assert {"reclaim", "fail_server", "drain", "refactor", "scale_out"} <= actions


# ----------------------------------------------------------------------
# Driver behaviour
# ----------------------------------------------------------------------
class TestScenarioDriver:
    @pytest.fixture(scope="class")
    def mini_report(self):
        return run_scenario_case(ScenarioCase(MINI, "FlexPipe", seed=0))

    def test_mini_runs_clean(self, mini_report):
        assert mini_report.ok, "\n".join(str(v) for v in mini_report.violations)
        assert mini_report.offered > 0
        assert mini_report.completed > 0

    def test_per_model_rows_cover_the_fleet(self, mini_report):
        assert set(mini_report.per_model) == {"LLAMA2-7B", "WHISPER-9B"}
        for summary in mini_report.per_model.values():
            assert summary.offered > 0
            assert summary.completed > 0

    def test_per_model_rows_sum_to_aggregate(self, mini_report):
        total = sum(s.completed for s in mini_report.per_model.values())
        assert total == mini_report.aggregate.completed

    def test_admitted_plus_shed_reconciles_with_offered(self, mini_report):
        """Per-model rows count admitted work; generated = admitted + shed."""
        admitted = sum(s.offered for s in mini_report.per_model.values())
        assert admitted + mini_report.shed == mini_report.offered

    def test_events_fired(self, mini_report):
        fired = mini_report.events
        assert sum(fired.values()) == len(MINI.events)
        assert any(k.startswith("reclaim:") for k in fired)
        assert any(k.startswith("refactor:") for k in fired)

    def test_same_case_is_deterministic(self, mini_report):
        again = run_scenario_case(ScenarioCase(MINI, "FlexPipe", seed=0))
        assert again.aggregate == mini_report.aggregate
        assert again.per_model == mini_report.per_model
        assert again.events == mini_report.events

    def test_different_seed_differs(self, mini_report):
        other = run_scenario_case(ScenarioCase(MINI, "FlexPipe", seed=1))
        assert other.offered != mini_report.offered

    def test_unknown_system_rejected(self):
        with pytest.raises(KeyError):
            run_scenarios([MINI], ["NoSuchSystem"], jobs=1, use_cache=False)

    def test_crash_becomes_attributed_violation(self, monkeypatch):
        import repro.scenarios.driver as driver_mod

        def boom(self):
            raise RuntimeError("synthetic scenario crash")

        monkeypatch.setattr(driver_mod.ScenarioDriver, "run", boom)
        report = driver_mod.run_scenario_case(
            ScenarioCase(MINI, "FlexPipe", seed=5)
        )
        assert not report.ok
        assert report.violations[0].invariant == "harness-crash"
        assert "synthetic scenario crash" in report.violations[0].detail
        assert report.seed == 5

    @pytest.mark.parametrize("system", sorted(CHAOS_SYSTEMS))
    def test_every_system_survives_the_mini_scenario(self, system):
        report = run_scenario_case(ScenarioCase(MINI, system, seed=2))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.completed > 0


# ----------------------------------------------------------------------
# Catalog scenarios stay invariant-clean (one representative system each
# beyond FlexPipe keeps tier-1 cost bounded; `repro scenario run --all`
# covers the full grid in CI).
# ----------------------------------------------------------------------
class TestCatalogRuns:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_quick_catalog_scenario_is_clean_on_flexpipe(self, name):
        spec = SCENARIOS[name].quick()
        report = run_scenario_case(ScenarioCase(spec, "FlexPipe", seed=0))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.offered > 0

    def test_tenant_churn_capacity_follows_the_script(self):
        """Late-arriving tenants actually get traffic and completions."""
        report = run_scenario_case(
            ScenarioCase(SCENARIOS["tenant-churn"], "FlexPipe", seed=0)
        )
        assert report.ok
        for model in ("LLAMA2-7B", "WHISPER-9B", "BERT-21B"):
            assert report.per_model[model].completed > 0, model


# ----------------------------------------------------------------------
# Runner fan-out: determinism at any job count + result cache
# (mirrors test_runner.py's contract for figure cells)
# ----------------------------------------------------------------------
class TestScenarioRunner:
    SYSTEMS = ["FlexPipe", "AlpaServe"]

    def _run(self, jobs: int, **kwargs):
        return run_scenarios(
            [MINI],
            self.SYSTEMS,
            seed=0,
            runner=ExperimentRunner(jobs=jobs, use_cache=False),
            **kwargs,
        )

    def test_jobs_1_2_4_identical(self):
        one = self._run(1)
        two = self._run(2)
        four = self._run(4)
        for a, b in ((one, two), (one, four)):
            assert len(a) == len(b) == len(self.SYSTEMS)
            for x, y in zip(a, b):
                assert x.scenario == y.scenario and x.system == y.system
                assert x.aggregate == y.aggregate  # every RunSummary field
                assert x.per_model == y.per_model
                assert x.events == y.events
                assert [str(v) for v in x.violations] == [
                    str(v) for v in y.violations
                ]

    def test_second_invocation_is_pure_cache(self, tmp_path):
        first = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        r1 = run_scenarios([MINI], ["FlexPipe"], runner=first)
        assert first.simulations_run == 1
        second = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        r2 = run_scenarios([MINI], ["FlexPipe"], runner=second)
        assert second.simulations_run == 0
        assert second.cache_hits == 1
        assert r1[0].aggregate == r2[0].aggregate
        assert r1[0].per_model == r2[0].per_model

    def test_seed_change_misses_the_cache(self, tmp_path):
        runner = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        run_scenarios([MINI], ["FlexPipe"], seed=0, runner=runner)
        run_scenarios([MINI], ["FlexPipe"], seed=1, runner=runner)
        assert runner.simulations_run == 2

    def test_harness_crash_reports_are_never_cached(self, tmp_path, monkeypatch):
        """A transient crash must re-execute next run, not pin a failing
        cell into the result cache until the next source edit."""
        import repro.scenarios.driver as driver_mod

        def boom(self):
            raise RuntimeError("transient environment failure")

        monkeypatch.setattr(driver_mod.ScenarioDriver, "run", boom)
        first = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        r1 = run_scenarios([MINI], ["FlexPipe"], runner=first)
        assert not r1[0].ok and first.simulations_run == 1
        second = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        r2 = run_scenarios([MINI], ["FlexPipe"], runner=second)
        assert second.cache_hits == 0
        assert second.simulations_run == 1  # re-executed, not replayed


# ----------------------------------------------------------------------
# QoS control plane: spec plumbing, tenant accounting, and the
# priority-inversion property (the reason the subsystem exists)
# ----------------------------------------------------------------------
class TestQoSScenarios:
    def test_slo_class_round_trips_and_validates(self):
        spec = get_scenario("priority-inversion")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.qos_enabled
        with pytest.raises(ValueError, match="SLO class"):
            ModelScript("LLAMA2-7B", slo_class="gold")
        with pytest.raises(ValueError, match="SLO class"):
            ArrivalSegment("steady", slo_class="gold")
        with pytest.raises(ValueError, match="qos"):
            ScenarioSpec(
                name="bad", models=(ModelScript("LLAMA2-7B"),), qos="maybe"
            )

    def test_qos_modes_auto_on_off(self):
        unclassed = ScenarioSpec(name="u", models=(ModelScript("LLAMA2-7B"),))
        assert not unclassed.qos_enabled  # auto + no classes
        assert replace(unclassed, qos="on").qos_enabled
        classed = ScenarioSpec(
            name="c",
            models=(ModelScript("LLAMA2-7B", slo_class="interactive"),),
        )
        assert classed.qos_enabled
        assert not replace(classed, qos="off").qos_enabled
        # A segment-level class alone also arms auto mode.
        segment = ScenarioSpec(
            name="s",
            models=(
                ModelScript(
                    "LLAMA2-7B",
                    segments=(ArrivalSegment("steady", slo_class="batch"),),
                ),
            ),
        )
        assert segment.qos_enabled

    def test_classed_tenant_effective_slo_is_the_class_target(self):
        script = ModelScript("LLAMA2-7B", slo_class="interactive")
        assert script.effective_slo == 2.5
        assert ModelScript("LLAMA2-7B").effective_slo == 10.0

    @pytest.fixture(scope="class")
    def inversion_reports(self):
        spec = get_scenario("priority-inversion")
        return {
            mode: run_scenario_case(
                ScenarioCase(replace(spec, qos=mode), "FlexPipe", seed=0)
            )
            for mode in ("on", "off")
        }

    def test_both_policies_hold_every_invariant(self, inversion_reports):
        for mode, report in inversion_reports.items():
            assert report.ok, (mode, [str(v) for v in report.violations])

    def test_qos_strictly_improves_interactive_attainment(
        self, inversion_reports
    ):
        """The acceptance property: same seed, identical traffic, the
        interactive tenant attains strictly more of its SLO with the
        control plane than under the null policy."""
        on = inversion_reports["on"].tenants["LLAMA2-7B"]
        off = inversion_reports["off"].tenants["LLAMA2-7B"]
        assert on.slo_class == "interactive"
        assert (on.offered, on.slo_class) == (off.offered, off.slo_class)
        assert on.attainment > off.attainment

    def test_tenant_books_balance_under_both_policies(self, inversion_reports):
        for report in inversion_reports.values():
            for tenant in report.tenants.values():
                assert tenant.admitted + tenant.shed == tenant.offered
                assert tenant.completed <= tenant.admitted
            assert (
                sum(t.shed for t in report.tenants.values()) == report.shed
            )
            assert (
                sum(t.offered for t in report.tenants.values())
                == report.offered
            )

    def test_per_model_summaries_carry_the_qos_fields(self, inversion_reports):
        report = inversion_reports["on"]
        summary = report.per_model["LLAMA2-7B"]
        tenant = report.tenants["LLAMA2-7B"]
        assert summary.slo_class == "interactive"
        assert summary.shed == tenant.shed
        assert summary.slo_attainment == pytest.approx(tenant.attainment)
        assert report.qos_enabled

    def test_weighted_fair_sheds_batch_harder_than_interactive(
        self, inversion_reports
    ):
        on = inversion_reports["on"]
        assert (
            on.tenants["BERT-21B"].shed_rate
            > on.tenants["LLAMA2-7B"].shed_rate
        )


class TestGpuContentionScenario:
    """The class-aware *resource* arbitration acceptance scenario: two
    classes race for the fragments a reclamation cycle hands back."""

    def test_share_cap_round_trips_and_validates(self):
        spec = get_scenario("gpu-contention")
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        assert spec.qos_enabled
        caps = {m.model: m.share_cap for m in spec.models}
        assert caps["BERT-21B"] is not None
        with pytest.raises(ValueError, match="share_cap"):
            ModelScript("LLAMA2-7B", share_cap=1.5)
        # A share cap alone (no class annotation) arms qos auto mode.
        capped = ScenarioSpec(
            name="capped",
            models=(ModelScript("LLAMA2-7B", share_cap=0.5),),
        )
        assert capped.qos_enabled

    @pytest.fixture(scope="class")
    def contention_reports(self):
        spec = get_scenario("gpu-contention")
        return {
            mode: run_scenario_case(
                ScenarioCase(replace(spec, qos=mode), "FlexPipe", seed=0)
            )
            for mode in ("on", "off")
        }

    def test_both_policies_hold_every_invariant(self, contention_reports):
        for mode, report in contention_reports.items():
            assert report.ok, (mode, [str(v) for v in report.violations])

    def test_interactive_tenant_wins_the_fragment_race(
        self, contention_reports
    ):
        """The acceptance property: with GPU arbitration the interactive
        tenant attains strictly more over identical traffic."""
        on = contention_reports["on"].tenants["LLAMA2-7B"]
        off = contention_reports["off"].tenants["LLAMA2-7B"]
        assert on.offered == off.offered
        assert on.attainment > off.attainment

    def test_batch_tenant_stays_under_its_cap(self, contention_reports):
        tenant = contention_reports["on"].tenants["BERT-21B"]
        assert tenant.share_cap is not None
        assert 0.0 < tenant.gpu_share_peak <= tenant.share_cap
        # The null policy carries the rows too (cap unenforced there).
        null = contention_reports["off"].tenants["BERT-21B"]
        assert null.gpu_share_peak > 0.0


class TestAzureReplayScenario:
    def test_azure_segment_validation(self):
        with pytest.raises(ValueError, match="trace_file"):
            ArrivalSegment("steady", trace_file="x.csv")
        ArrivalSegment("azure", trace_file="x.csv")  # fine

    def test_catalog_entry_runs_clean_and_offers_traffic(self):
        report = run_scenario_case(
            ScenarioCase(get_scenario("azure-replay"), "FlexPipe", seed=0)
        )
        assert report.ok, "\n".join(str(v) for v in report.violations)
        for model in ("LLAMA2-7B", "WHISPER-9B"):
            assert report.per_model[model].offered > 0

    def test_trace_file_bundle_feeds_replay_arrivals(self, tmp_path):
        """The `repro trace synth` -> CSV -> scenario path end-to-end."""
        import numpy as np

        from repro.workloads.azure import AzureSynthConfig, synthesize_azure_like

        csv_path = tmp_path / "bundle.csv"
        bundle = synthesize_azure_like(
            np.random.default_rng(7),
            AzureSynthConfig(n_apps=6, days=1.0, mean_total_rate=8.0),
        )
        bundle.write_csv(csv_path)
        spec = ScenarioSpec(
            name="azure-file",
            cluster="small",
            settle=60.0,
            drain=10.0,
            models=(
                ModelScript(
                    "LLAMA2-7B",
                    segments=(
                        ArrivalSegment(
                            "azure",
                            duration=20.0,
                            qps=5.0,
                            trace_file=str(csv_path),
                        ),
                    ),
                ),
            ),
        )
        report = run_scenario_case(ScenarioCase(spec, "FlexPipe", seed=0))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        # Rescaling targets qps over the segment: ~qps * duration offered.
        assert report.offered == pytest.approx(100, rel=0.2)

    def test_azure_replay_is_deterministic(self):
        spec = get_scenario("azure-replay").quick()
        a = run_scenario_case(ScenarioCase(spec, "FlexPipe", seed=3))
        b = run_scenario_case(ScenarioCase(spec, "FlexPipe", seed=3))
        assert a.aggregate == b.aggregate
        assert a.offered == b.offered
