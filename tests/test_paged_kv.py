"""Tests for the paged KV block manager (vLLM-style, Eq. 10 integration)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pipeline.kvcache import ValidityMask
from repro.pipeline.paged_kv import (
    BlockPool,
    CapacityError,
    PagedKVCache,
    PagedKVConfig,
    PagedKVError,
)


def make_cache(n_blocks=16, block_tokens=4, watermark=0.0, bytes_per_token=2.0):
    return PagedKVCache(
        PagedKVConfig(
            n_blocks=n_blocks,
            block_tokens=block_tokens,
            bytes_per_token=bytes_per_token,
            watermark=watermark,
        )
    )


class TestConfig:
    def test_block_bytes(self):
        cfg = PagedKVConfig(n_blocks=8, block_tokens=16, bytes_per_token=2.0)
        assert cfg.block_bytes == 32.0
        assert cfg.capacity_tokens == 128

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_blocks": 0},
            {"n_blocks": 4, "block_tokens": 0},
            {"n_blocks": 4, "bytes_per_token": 0.0},
            {"n_blocks": 4, "watermark": 1.0},
            {"n_blocks": 4, "watermark": -0.1},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PagedKVConfig(**kwargs)


class TestBlockPool:
    def test_allocate_release_cycle(self):
        pool = BlockPool(2)
        a = pool.allocate()
        b = pool.allocate()
        assert pool.free_blocks == 0
        with pytest.raises(CapacityError):
            pool.allocate()
        pool.release(a)
        pool.release(b)
        assert pool.free_blocks == 2
        pool.check_leaks()

    def test_share_keeps_block_alive(self):
        pool = BlockPool(1)
        block = pool.allocate()
        pool.share(block)
        pool.release(block)
        assert pool.free_blocks == 0  # still one reference
        pool.release(block)
        assert pool.free_blocks == 1

    def test_release_unallocated_rejected(self):
        with pytest.raises(PagedKVError, match="unallocated"):
            BlockPool(1).release(0)

    def test_share_unallocated_rejected(self):
        with pytest.raises(PagedKVError, match="unallocated"):
            BlockPool(1).share(0)


class TestRegisterAppendFree:
    def test_register_allocates_prompt_blocks(self):
        cache = make_cache(block_tokens=4)
        cache.register(1, prompt_tokens=10)
        assert cache.sequence(1).tokens == 10
        assert len(cache.sequence(1).block_table) == 3  # ceil(10/4)
        cache.check_invariants()

    def test_append_grows_blocks_lazily(self):
        cache = make_cache(block_tokens=4)
        cache.register(1, prompt_tokens=4)
        cache.append(1, 1)
        assert len(cache.sequence(1).block_table) == 2
        cache.append(1, 3)  # fills block 2 exactly; no new block
        assert len(cache.sequence(1).block_table) == 2
        cache.check_invariants()

    def test_free_returns_blocks_to_pool(self):
        cache = make_cache(n_blocks=4, block_tokens=4)
        cache.register(1, prompt_tokens=16)
        assert cache.pool.free_blocks == 0
        freed = cache.free(1)
        assert freed == 4
        assert cache.pool.free_blocks == 4
        assert 1 not in cache

    def test_double_register_rejected(self):
        cache = make_cache()
        cache.register(1)
        with pytest.raises(PagedKVError, match="already registered"):
            cache.register(1)

    def test_unknown_request_rejected(self):
        with pytest.raises(PagedKVError, match="unknown"):
            make_cache().append(99)

    def test_register_beyond_capacity_rolls_back(self):
        cache = make_cache(n_blocks=2, block_tokens=4)
        with pytest.raises(CapacityError):
            cache.register(1, prompt_tokens=100)
        assert 1 not in cache
        assert cache.pool.free_blocks == 2
        cache.check_invariants()

    def test_utilization_and_resident_bytes(self):
        cache = make_cache(n_blocks=8, block_tokens=4, bytes_per_token=2.0)
        cache.register(1, prompt_tokens=8)
        assert cache.utilization == pytest.approx(0.25)
        assert cache.resident_bytes == pytest.approx(2 * 4 * 2.0)
        assert cache.resident_tokens == 8

    def test_negative_append_rejected(self):
        cache = make_cache()
        cache.register(1)
        with pytest.raises(ValueError, match="negative"):
            cache.append(1, -1)


class TestAdmission:
    def test_watermark_reserves_headroom(self):
        cache = make_cache(n_blocks=10, block_tokens=4, watermark=0.2)
        assert cache.can_admit(8 * 4)  # needs 8 of 10, reserve 2 -> ok
        assert not cache.can_admit(9 * 4)  # would dip into the reserve

    def test_can_admit_tracks_usage(self):
        cache = make_cache(n_blocks=4, block_tokens=4)
        assert cache.can_admit(16)
        cache.register(1, prompt_tokens=12)
        assert cache.can_admit(4)
        assert not cache.can_admit(8)


class TestFork:
    def test_fork_shares_full_blocks(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=8)  # exactly 2 full blocks
        cache.fork(1, 2)
        assert cache.pool.used_blocks == 2  # fully shared
        assert cache.sequence(2).tokens == 8
        cache.check_invariants()

    def test_fork_copies_partial_tail(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=6)  # 1 full + 1 partial
        cache.fork(1, 2)
        assert cache.pool.used_blocks == 3  # shared full + two tails
        t1, t2 = cache.sequence(1).block_table, cache.sequence(2).block_table
        assert t1[0] == t2[0]
        assert t1[1] != t2[1]

    def test_append_after_fork_copies_on_write(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=8)
        cache.fork(1, 2)
        shared_tail = cache.sequence(1).block_table[-1]
        # Token 9 opens a new block; block 2 stays shared since it is full.
        cache.append(1, 1)
        assert cache.pool.refcount(shared_tail) == 2
        cache.check_invariants()

    def test_cow_on_shared_partial_tail(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=8)
        cache.fork(1, 2)
        cache.append(1, 1)  # seq 1 has a private 9th-token block
        cache.append(1, 1)  # appending into private partial: no copy
        cache.check_invariants()
        assert cache.sequence(1).tokens == 10

    def test_fork_then_free_parent_keeps_child(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=8)
        cache.fork(1, 2)
        cache.free(1)
        assert cache.sequence(2).tokens == 8
        cache.check_invariants()

    def test_fork_to_existing_id_rejected(self):
        cache = make_cache()
        cache.register(1, prompt_tokens=4)
        cache.register(2)
        with pytest.raises(PagedKVError, match="already registered"):
            cache.fork(1, 2)


class TestPreemption:
    def test_choose_victims_lru_order(self):
        cache = make_cache(n_blocks=4, block_tokens=4, watermark=0.0)
        cache.register(1, prompt_tokens=8, now=1.0)
        cache.register(2, prompt_tokens=8, now=2.0)
        victims = cache.choose_victims(blocks_needed=2)
        assert victims == [1]  # oldest first

    def test_choose_victims_none_when_space_free(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=4)
        assert cache.choose_victims(blocks_needed=2) == []

    def test_choose_victims_impossible_raises(self):
        cache = make_cache(n_blocks=2, block_tokens=4)
        cache.register(1, prompt_tokens=8)
        with pytest.raises(CapacityError, match="evicting all"):
            cache.choose_victims(blocks_needed=5)

    def test_preempt_frees_and_counts(self):
        cache = make_cache(n_blocks=4, block_tokens=4)
        cache.register(1, prompt_tokens=8)
        cache.preempt(1)
        assert cache.preemptions == 1
        assert cache.pool.free_blocks == 4


class TestMigration:
    def test_migration_bytes_full_when_no_snapshot(self):
        cache = make_cache(bytes_per_token=3.0)
        cache.register(1, prompt_tokens=10)
        assert cache.migration_bytes(1) == pytest.approx(30.0)

    def test_migration_bytes_delta_with_snapshot(self):
        cache = make_cache(bytes_per_token=1.0)
        cache.register(1, prompt_tokens=10)
        cache.append(1, 5)
        snapshot = ValidityMask.upto(10)
        assert cache.migration_bytes(1, snapshot) == pytest.approx(5.0)

    def test_validity_mask_covers_resident_prefix(self):
        cache = make_cache()
        cache.register(1, prompt_tokens=7)
        assert cache.validity(1).count == 7

    def test_blocks_for_range(self):
        cache = make_cache(n_blocks=8, block_tokens=4)
        cache.register(1, prompt_tokens=16)
        table = cache.sequence(1).block_table
        assert cache.blocks_for_range(1, 0, 4) == table[:1]
        assert cache.blocks_for_range(1, 3, 5) == table[:2]
        assert cache.blocks_for_range(1, 4, 16) == table[1:]
        assert cache.blocks_for_range(1, 0, 0) == []

    def test_blocks_for_range_out_of_bounds(self):
        cache = make_cache()
        cache.register(1, prompt_tokens=4)
        with pytest.raises(ValueError, match="outside resident"):
            cache.blocks_for_range(1, 0, 5)


class TestProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["register", "append", "free", "fork"]),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=60,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_no_leaks_under_random_workload(self, ops):
        """Invariant 4 analogue: arbitrary op sequences never leak blocks."""
        cache = make_cache(n_blocks=12, block_tokens=4)
        live: set[int] = set()
        next_id = 100
        for op, rid, amount in ops:
            try:
                if op == "register":
                    if rid in live:
                        continue
                    cache.register(rid, prompt_tokens=amount)
                    live.add(rid)
                elif op == "append" and rid in live:
                    cache.append(rid, amount)
                elif op == "free" and rid in live:
                    cache.free(rid)
                    live.remove(rid)
                elif op == "fork" and rid in live:
                    cache.fork(rid, next_id)
                    live.add(next_id)
                    next_id += 1
            except CapacityError:
                pass  # legal outcome under memory pressure
            cache.check_invariants()
        for rid in list(live):
            cache.free(rid)
        assert cache.pool.free_blocks == 12
        cache.check_invariants()

    @given(
        prompt=st.integers(min_value=0, max_value=40),
        appends=st.lists(st.integers(min_value=0, max_value=8), max_size=12),
    )
    @settings(max_examples=80, deadline=None)
    def test_block_table_size_always_matches_tokens(self, prompt, appends):
        cache = make_cache(n_blocks=64, block_tokens=4)
        cache.register(1, prompt_tokens=prompt)
        for n in appends:
            cache.append(1, n)
        seq = cache.sequence(1)
        assert len(seq.block_table) == -(-seq.tokens // 4)
        cache.check_invariants()
