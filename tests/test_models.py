"""Tests for the model zoo, computation graphs, and the calibrated cost model."""

from __future__ import annotations

import pytest

from repro.models.costs import CostModelConfig, floor_pow2
from repro.models.operators import OpKind
from repro.models.transformer import build_transformer
from repro.models.zoo import BERT_21B, LLAMA2_7B, MODEL_ZOO, OPT_66B, WHISPER_9B, get_model
from repro.transfer.links import GB


class TestZoo:
    def test_all_four_paper_models_present(self):
        assert set(MODEL_ZOO) == {"OPT-66B", "LLAMA2-7B", "BERT-21B", "WHISPER-9B"}

    def test_get_model_unknown_raises_with_options(self):
        with pytest.raises(KeyError, match="available"):
            get_model("GPT-5")

    def test_opt_checkpoint_is_120_gb(self):
        assert OPT_66B.checkpoint_bytes == pytest.approx(120 * GB)

    def test_kv_bytes_per_token_formula(self):
        # 2 (K,V) x 2 bytes x hidden x layers
        assert OPT_66B.kv_bytes_per_token == 4 * 9216 * 64

    def test_whisper_is_encoder_decoder(self):
        assert WHISPER_9B.encoder_layers > 0
        assert WHISPER_9B.total_layers == WHISPER_9B.n_layers + WHISPER_9B.encoder_layers


class TestGraphConstruction:
    @pytest.mark.parametrize("spec", [OPT_66B, LLAMA2_7B, BERT_21B, WHISPER_9B])
    def test_total_params_match_declared_checkpoint(self, spec):
        graph = build_transformer(spec)
        assert graph.total_param_bytes == pytest.approx(spec.checkpoint_bytes, rel=1e-9)

    def test_operator_count_scales_with_layers(self):
        graph = build_transformer(OPT_66B)
        # embed + 64 layers x 7 ops + final_norm + lm_head
        assert len(graph) == 1 + 64 * 7 + 2

    def test_whisper_has_cross_attention(self):
        graph = build_transformer(WHISPER_9B)
        kinds = {op.kind for op in graph.operators}
        assert OpKind.CROSS_ATTENTION in kinds
        assert OpKind.CONV_FRONTEND in kinds

    def test_prefix_aggregates_consistent(self):
        graph = build_transformer(LLAMA2_7B)
        mid = len(graph) // 2
        total = graph.param_bytes(0, mid) + graph.param_bytes(mid, len(graph))
        assert total == pytest.approx(graph.total_param_bytes)

    def test_kv_lives_only_in_decoder_attention(self):
        graph = build_transformer(OPT_66B)
        for op in graph.operators:
            if op.kv_bytes_per_token > 0:
                assert op.kind is OpKind.ATTENTION

    def test_cut_points_exclude_uncuttable_ops(self):
        graph = build_transformer(LLAMA2_7B)
        for i in graph.cut_points():
            assert graph.operators[i].cuttable_after
        # No cut allowed directly after a QKV projection.
        qkv = [op.index for op in graph.operators if op.kind is OpKind.QKV_PROJ]
        assert not set(qkv) & set(graph.cut_points())

    def test_layer_boundaries_have_quality_one(self):
        graph = build_transformer(LLAMA2_7B)
        for i in graph.layer_boundaries():
            assert graph.boundary_quality(i) == 1.0

    def test_networkx_view_is_acyclic_chain(self):
        graph = build_transformer(LLAMA2_7B)
        g = graph.to_networkx()
        assert g.number_of_nodes() == len(graph)
        assert g.number_of_edges() == len(graph) - 1
        graph.validate()


class TestCostModel:
    def test_floor_pow2(self):
        assert floor_pow2(0.5) == 0
        assert floor_pow2(1) == 1
        assert floor_pow2(127.9) == 64
        assert floor_pow2(128) == 128
        assert floor_pow2(1000) == 512

    def test_table2_compute_column_calibration(self, cost_model):
        """The affine compute model reproduces Table 2 within a few %."""
        paper = {30.0: 69.94e-3, 15.0: 36.63e-3, 7.5: 18.67e-3, 3.75: 9.67e-3}
        for gib, expected in paper.items():
            measured = cost_model.decode_iter_time(gib * GB, batch=1)
            assert measured == pytest.approx(expected, rel=0.05)

    def test_table2_load_column_exact_at_calibration_points(self, cost_model):
        paper = {30.0: 47.14, 15.0: 13.05, 7.5: 9.19, 3.75: 5.43}
        for gib, expected in paper.items():
            assert cost_model.cold_load_time(gib * GB) == pytest.approx(expected, rel=1e-6)

    def test_table2_comm_per_hop_calibration(self, cost_model):
        """2.1 ms per hop at the batch-128 OPT-66B operating point."""
        act = 128 * 9216 * 2  # batch x hidden x fp16
        assert cost_model.hop_time(act) == pytest.approx(2.1e-3, rel=0.05)

    def test_load_curve_monotone_and_interpolates(self, cost_model):
        times = [cost_model.cold_load_time(g * GB) for g in (2, 5, 10, 20, 40)]
        assert times == sorted(times)
        assert cost_model.cold_load_time(0) == 0.0

    def test_decode_time_grows_with_batch(self, cost_model):
        t1 = cost_model.decode_iter_time(10 * GB, 1)
        t64 = cost_model.decode_iter_time(10 * GB, 64)
        assert t64 > t1
        # ...but sub-linearly: the stream cost is amortised.
        assert t64 < 64 * t1

    def test_decode_rejects_zero_batch(self, cost_model):
        with pytest.raises(ValueError):
            cost_model.decode_iter_time(GB, 0)

    def test_prefill_scales_with_tokens(self, cost_model):
        t1 = cost_model.prefill_time(1e9, 128)
        t2 = cost_model.prefill_time(1e9, 256)
        assert t2 > t1

    def test_warm_load_much_faster_than_cold(self, cost_model):
        for gib in (3.75, 15.0, 30.0):
            assert cost_model.warm_load_time(gib * GB) < cost_model.cold_load_time(gib * GB) / 3

    def test_max_batch_zero_when_params_fill_gpu(self, cost_model):
        assert cost_model.max_batch(85 * GB, 1.0) == 0

    def test_max_batch_capped(self, cost_model):
        assert cost_model.max_batch(1 * GB, 1.0) == cost_model.config.max_batch_cap

    def test_config_requires_sorted_load_points(self):
        with pytest.raises(ValueError):
            CostModelConfig(load_points=((2 * GB, 1.0), (1 * GB, 2.0)))


class TestTable2MaxBatch:
    """The headline Table 2 reproduction: 128/256/512/1024 emerges from
    KV-capacity physics + power-of-two flooring (DESIGN.md §4)."""

    @pytest.mark.parametrize(
        "n_stages,expected", [(4, 128), (8, 256), (16, 512), (32, 1024)]
    )
    def test_max_batch_matches_paper(self, cost_model, n_stages, expected):
        stage_bytes = OPT_66B.checkpoint_bytes / n_stages
        kv_per_request = OPT_66B.kv_bytes_per_request / n_stages
        assert cost_model.max_batch(stage_bytes, kv_per_request) == expected


class TestProfiler:
    def test_stage_profile_aggregates(self, opt_profile):
        stage = opt_profile.stage(0, len(opt_profile.graph))
        assert stage.param_bytes == pytest.approx(OPT_66B.checkpoint_bytes)
        assert stage.n_ops == len(opt_profile.graph)

    def test_invalid_range_rejected(self, opt_profile):
        with pytest.raises(ValueError):
            opt_profile.stage(10, 10)
        with pytest.raises(ValueError):
            opt_profile.stage(-1, 5)

    def test_kv_fractions_sum_to_one(self, opt_profile):
        n = len(opt_profile.graph)
        quarters = [opt_profile.stage(i * n // 4, (i + 1) * n // 4) for i in range(4)]
        total = sum(opt_profile.kv_fraction(s) for s in quarters)
        assert total == pytest.approx(1.0)

    def test_stage_max_batch_larger_for_smaller_stages(self, opt_profile):
        n = len(opt_profile.graph)
        half = opt_profile.stage(0, n // 2)
        eighth = opt_profile.stage(0, n // 8)
        assert opt_profile.stage_max_batch(eighth) >= opt_profile.stage_max_batch(half)
