"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import make_small_cluster
from repro.core.context import ServingContext
from repro.models.costs import CostModel
from repro.models.transformer import build_transformer
from repro.models.zoo import LLAMA2_7B, OPT_66B
from repro.models.profiler import ModelProfile
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(seed=42)


@pytest.fixture
def small_cluster(sim):
    return make_small_cluster(sim, n_servers=6, gpus_per_server=2)


@pytest.fixture
def ctx(sim, small_cluster, streams) -> ServingContext:
    return ServingContext.create(sim, small_cluster, streams)


@pytest.fixture(scope="session")
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture(scope="session")
def opt_profile(cost_model) -> ModelProfile:
    return ModelProfile(
        spec=OPT_66B, graph=build_transformer(OPT_66B), cost_model=cost_model
    )


@pytest.fixture(scope="session")
def llama_profile(cost_model) -> ModelProfile:
    return ModelProfile(
        spec=LLAMA2_7B, graph=build_transformer(LLAMA2_7B), cost_model=cost_model
    )
