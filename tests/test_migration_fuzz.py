"""Property-based fuzzing of the transfer/migration layer (tier-1).

Fixed seeds keep the suite deterministic; the detection-power tests
poison known-good schedules so each invariant demonstrably fires.
"""

from __future__ import annotations

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.transfer.datamover import DataMover, TransferMethod, TransferPlan
from repro.transfer.links import FairShareLink, LinkSpec, MB
from repro.transfer.migration import (
    Endpoint,
    ItemKind,
    MigrationItem,
    MigrationPlanner,
    ScheduledTransfer,
)
from repro.validation.migration_fuzz import (
    MigrationFuzzCase,
    check_method_selection,
    check_schedule,
    expected_method,
    fuzz_link_case,
    fuzz_migration_case,
    fuzz_seeds,
    random_costs,
    random_items,
)

SEEDS = (0, 1, 2, 3, 4)


# ----------------------------------------------------------------------
# Seeded fuzz cases hold every invariant
# ----------------------------------------------------------------------
class TestSeededFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_case_is_clean(self, seed):
        report = fuzz_migration_case(MigrationFuzzCase(seed=seed))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.schedules == 25
        assert report.items > 0

    def test_case_is_deterministic(self):
        a = fuzz_migration_case(MigrationFuzzCase(seed=1))
        b = fuzz_migration_case(MigrationFuzzCase(seed=1))
        assert (a.items, a.schedules, a.transfers) == (
            b.items,
            b.schedules,
            b.transfers,
        )

    def test_fan_out_reports_per_seed(self):
        reports = fuzz_seeds(seeds=3, jobs=1, case_kwargs={"rounds": 5})
        assert [r.case.seed for r in reports] == [0, 1, 2]
        assert all(r.ok for r in reports)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lpt_schedule_invariants_directly(self, seed):
        """The planner's output satisfies the stated bounds for arbitrary
        seeded item sets, both KV-first and unordered."""
        rng = RandomStreams(seed).stream("direct")
        planner = MigrationPlanner()
        for _ in range(10):
            items = random_items(rng, max_items=30, max_servers=5)
            for kv_first in (True, False):
                schedule = planner.schedule(items, kv_first=kv_first)
                violations = check_schedule(
                    items, schedule, kv_first=kv_first
                )
                assert violations == [], "\n".join(map(str, violations))


# ----------------------------------------------------------------------
# Detection power: poisoned schedules must be flagged
# ----------------------------------------------------------------------
@pytest.fixture
def good_schedule():
    a = Endpoint("s0", "s0g0")
    b = Endpoint("s1", "s1g0")
    c = Endpoint("s2", "s2g0")
    items = [
        MigrationItem(ItemKind.KV, 256 * MB, a, b, tag="kv0"),
        MigrationItem(ItemKind.PARAMS, 512 * MB, a, b, tag="p0"),
        MigrationItem(ItemKind.PARAMS, 128 * MB, c, b, tag="p1"),
        MigrationItem(ItemKind.KV, 64 * MB, b, c, tag="kv1"),
    ]
    return items, MigrationPlanner().schedule(items)


def invariants_of(violations):
    return {v.invariant for v in violations}


class TestDetectionPower:
    def test_good_schedule_is_clean(self, good_schedule):
        items, schedule = good_schedule
        assert check_schedule(items, schedule) == []

    def test_dropped_item_flagged(self, good_schedule):
        items, schedule = good_schedule
        schedule.transfers.pop()
        assert "migration-conservation" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_duplicated_transfer_flagged(self, good_schedule):
        items, schedule = good_schedule
        schedule.transfers.append(schedule.transfers[0])
        assert "migration-conservation" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_channel_overlap_flagged(self, good_schedule):
        items, schedule = good_schedule
        # Move every transfer to start at 0: streams sharing a NIC overlap.
        schedule.transfers = [
            ScheduledTransfer(t.item, t.plan, 0.0, t.plan.duration)
            for t in schedule.transfers
        ]
        assert "migration-channel-overlap" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_kv_ordering_violation_flagged(self, good_schedule):
        items, schedule = good_schedule
        # Shift all KV transfers after the params on their channels.
        last = schedule.makespan
        schedule.transfers = [
            ScheduledTransfer(t.item, t.plan, t.start + last, t.end + last)
            if t.item.kind is ItemKind.KV
            else t
            for t in schedule.transfers
        ]
        assert "migration-kv-ordering" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_stretched_slot_flagged(self, good_schedule):
        items, schedule = good_schedule
        t = schedule.transfers[0]
        schedule.transfers[0] = ScheduledTransfer(
            t.item, t.plan, t.start, t.end + 1.0
        )
        assert "migration-timing" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_makespan_below_longest_stream_flagged(self, good_schedule):
        items, schedule = good_schedule
        # Compress every slot to zero length: the makespan lower bounds
        # (longest stream, busiest channel) both break.
        schedule.transfers = [
            ScheduledTransfer(t.item, t.plan, 0.0, 0.0)
            for t in schedule.transfers
        ]
        found = invariants_of(check_schedule(items, schedule))
        assert "migration-makespan" in found


# ----------------------------------------------------------------------
# Link-layer properties
# ----------------------------------------------------------------------
class TestLinkProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_contention_holds_physics(self, seed):
        rng = RandomStreams(seed).stream("links")
        for _ in range(5):
            violations = fuzz_link_case(rng)
            assert violations == [], "\n".join(map(str, violations))

    def test_contention_never_speeds_a_stream_up(self):
        """Fair sharing: adding background streams cannot make a transfer
        finish earlier than it does alone."""
        spec = LinkSpec("solo", 10.0 * 1024 * MB, 1e-4)

        def run(background: int) -> float:
            sim = Simulator()
            link = FairShareLink(sim, spec)
            probe = link.transfer(512 * MB)
            for _ in range(background):
                link.transfer(256 * MB)
            sim.run_until_idle()
            assert probe.duration is not None
            return probe.duration

        alone = run(0)
        for n in (1, 2, 5):
            assert run(n) >= alone - 1e-9

    def test_rate_cap_lower_bounds_duration(self):
        sim = Simulator()
        link = FairShareLink(sim, LinkSpec("capped", 1024 * MB, 0.0))
        handle = link.transfer(100 * MB, max_rate=10 * MB)
        sim.run_until_idle()
        assert handle.duration == pytest.approx(10.0, rel=1e-6)


# ----------------------------------------------------------------------
# §8 method-selection invariants (DataMover hierarchy through the planner)
# ----------------------------------------------------------------------
class TestMethodSelection:
    def make(self, *, src_rdma=True, dst_rdma=True, same_server=False):
        src = Endpoint("s0", "s0g0", rdma=src_rdma)
        dst = Endpoint(
            "s0" if same_server else "s1",
            "s0g1" if same_server else "s1g0",
            rdma=dst_rdma,
        )
        return [MigrationItem(ItemKind.KV, 256 * MB, src, dst, tag="kv0")]

    def check(self, items, planner=None, **kwargs):
        planner = planner or MigrationPlanner()
        schedule = planner.schedule(items)
        return schedule, check_method_selection(
            items,
            schedule,
            costs=planner.mover.costs,
            force_nccl=planner.force_nccl,
            **kwargs,
        )

    def test_planner_output_is_clean_for_every_endpoint_shape(self):
        for kwargs in (
            {"same_server": True},
            {"src_rdma": True, "dst_rdma": True},
            {"src_rdma": True, "dst_rdma": False},
            {"src_rdma": False, "dst_rdma": False},
        ):
            _, violations = self.check(self.make(**kwargs))
            assert violations == [], "\n".join(map(str, violations))

    def test_expected_hierarchy(self):
        assert expected_method(self.make(same_server=True)[0]) is TransferMethod.LOCAL
        assert expected_method(self.make()[0]) is TransferMethod.RDMA
        assert (
            expected_method(self.make(dst_rdma=False)[0])
            is TransferMethod.SENDFILE
        )
        assert (
            expected_method(self.make()[0], force_nccl=True)
            is TransferMethod.NCCL
        )

    def test_rdma_demoted_to_sendfile_flagged(self):
        """The headline §8 property: both endpoints RDMA-capable => the
        plan must use RDMA, and a sendfile fallback is a regression."""
        items = self.make()
        planner = MigrationPlanner()
        schedule = planner.schedule(items)
        t = schedule.transfers[0]
        demoted = DataMover().plan(
            t.item.nbytes, same_server=False, src_rdma=False, dst_rdma=False
        )
        schedule.transfers[0] = ScheduledTransfer(
            t.item, demoted, t.start, t.start + demoted.duration
        )
        found = invariants_of(
            check_method_selection(items, schedule, costs=planner.mover.costs)
        )
        assert "migration-method" in found

    def test_forced_nccl_expected_and_clean(self):
        planner = MigrationPlanner(force_nccl=True)
        _, violations = self.check(self.make(), planner=planner)
        assert violations == []
        schedule = planner.schedule(self.make())
        assert schedule.transfers[0].plan.method is TransferMethod.NCCL

    def test_wrong_bandwidth_in_plan_flagged(self):
        """A plan claiming RDMA but carrying another method's bandwidth
        breaks the costs-honoured invariant."""
        items = self.make()
        planner = MigrationPlanner()
        schedule = planner.schedule(items)
        t = schedule.transfers[0]
        costs = planner.mover.costs
        forged = TransferPlan(
            TransferMethod.RDMA,
            t.plan.nbytes,
            costs.rdma_setup,
            costs.sendfile_bandwidth,  # wrong physics for the method
        )
        schedule.transfers[0] = ScheduledTransfer(
            t.item, forged, t.start, t.start + forged.duration
        )
        found = invariants_of(
            check_method_selection(items, schedule, costs=costs)
        )
        assert "migration-method-costs" in found

    def test_slot_not_using_method_bandwidth_flagged(self):
        """A correct plan whose *schedule slot* was stretched (bandwidth
        not actually used) is caught even though the plan looks right."""
        items = self.make()
        planner = MigrationPlanner()
        schedule = planner.schedule(items)
        t = schedule.transfers[0]
        schedule.transfers[0] = ScheduledTransfer(
            t.item, t.plan, t.start, t.end + 1.0
        )
        found = invariants_of(
            check_method_selection(items, schedule, costs=planner.mover.costs)
        )
        assert "migration-method-costs" in found

    def test_randomised_costs_round_trip_clean(self):
        """The invariants hold for arbitrary (seeded) cost tables — the
        planner must honour whatever physics it is configured with."""
        rng = RandomStreams(5).stream("costs")
        for _ in range(10):
            costs = random_costs(rng)
            planner = MigrationPlanner(DataMover(costs))
            items = random_items(rng, max_items=20, max_servers=4)
            schedule = planner.schedule(items)
            violations = check_method_selection(
                items, schedule, costs=costs
            )
            assert violations == [], "\n".join(map(str, violations))
