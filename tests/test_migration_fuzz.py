"""Property-based fuzzing of the transfer/migration layer (tier-1).

Fixed seeds keep the suite deterministic; the detection-power tests
poison known-good schedules so each invariant demonstrably fires.
"""

from __future__ import annotations

import pytest

from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.transfer.links import FairShareLink, LinkSpec, MB
from repro.transfer.migration import (
    Endpoint,
    ItemKind,
    MigrationItem,
    MigrationPlanner,
    ScheduledTransfer,
)
from repro.validation.migration_fuzz import (
    MigrationFuzzCase,
    check_schedule,
    fuzz_link_case,
    fuzz_migration_case,
    fuzz_seeds,
    random_items,
)

SEEDS = (0, 1, 2, 3, 4)


# ----------------------------------------------------------------------
# Seeded fuzz cases hold every invariant
# ----------------------------------------------------------------------
class TestSeededFuzz:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_case_is_clean(self, seed):
        report = fuzz_migration_case(MigrationFuzzCase(seed=seed))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.schedules == 25
        assert report.items > 0

    def test_case_is_deterministic(self):
        a = fuzz_migration_case(MigrationFuzzCase(seed=1))
        b = fuzz_migration_case(MigrationFuzzCase(seed=1))
        assert (a.items, a.schedules, a.transfers) == (
            b.items,
            b.schedules,
            b.transfers,
        )

    def test_fan_out_reports_per_seed(self):
        reports = fuzz_seeds(seeds=3, jobs=1, case_kwargs={"rounds": 5})
        assert [r.case.seed for r in reports] == [0, 1, 2]
        assert all(r.ok for r in reports)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_lpt_schedule_invariants_directly(self, seed):
        """The planner's output satisfies the stated bounds for arbitrary
        seeded item sets, both KV-first and unordered."""
        rng = RandomStreams(seed).stream("direct")
        planner = MigrationPlanner()
        for _ in range(10):
            items = random_items(rng, max_items=30, max_servers=5)
            for kv_first in (True, False):
                schedule = planner.schedule(items, kv_first=kv_first)
                violations = check_schedule(
                    items, schedule, kv_first=kv_first
                )
                assert violations == [], "\n".join(map(str, violations))


# ----------------------------------------------------------------------
# Detection power: poisoned schedules must be flagged
# ----------------------------------------------------------------------
@pytest.fixture
def good_schedule():
    a = Endpoint("s0", "s0g0")
    b = Endpoint("s1", "s1g0")
    c = Endpoint("s2", "s2g0")
    items = [
        MigrationItem(ItemKind.KV, 256 * MB, a, b, tag="kv0"),
        MigrationItem(ItemKind.PARAMS, 512 * MB, a, b, tag="p0"),
        MigrationItem(ItemKind.PARAMS, 128 * MB, c, b, tag="p1"),
        MigrationItem(ItemKind.KV, 64 * MB, b, c, tag="kv1"),
    ]
    return items, MigrationPlanner().schedule(items)


def invariants_of(violations):
    return {v.invariant for v in violations}


class TestDetectionPower:
    def test_good_schedule_is_clean(self, good_schedule):
        items, schedule = good_schedule
        assert check_schedule(items, schedule) == []

    def test_dropped_item_flagged(self, good_schedule):
        items, schedule = good_schedule
        schedule.transfers.pop()
        assert "migration-conservation" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_duplicated_transfer_flagged(self, good_schedule):
        items, schedule = good_schedule
        schedule.transfers.append(schedule.transfers[0])
        assert "migration-conservation" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_channel_overlap_flagged(self, good_schedule):
        items, schedule = good_schedule
        # Move every transfer to start at 0: streams sharing a NIC overlap.
        schedule.transfers = [
            ScheduledTransfer(t.item, t.plan, 0.0, t.plan.duration)
            for t in schedule.transfers
        ]
        assert "migration-channel-overlap" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_kv_ordering_violation_flagged(self, good_schedule):
        items, schedule = good_schedule
        # Shift all KV transfers after the params on their channels.
        last = schedule.makespan
        schedule.transfers = [
            ScheduledTransfer(t.item, t.plan, t.start + last, t.end + last)
            if t.item.kind is ItemKind.KV
            else t
            for t in schedule.transfers
        ]
        assert "migration-kv-ordering" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_stretched_slot_flagged(self, good_schedule):
        items, schedule = good_schedule
        t = schedule.transfers[0]
        schedule.transfers[0] = ScheduledTransfer(
            t.item, t.plan, t.start, t.end + 1.0
        )
        assert "migration-timing" in invariants_of(
            check_schedule(items, schedule)
        )

    def test_makespan_below_longest_stream_flagged(self, good_schedule):
        items, schedule = good_schedule
        # Compress every slot to zero length: the makespan lower bounds
        # (longest stream, busiest channel) both break.
        schedule.transfers = [
            ScheduledTransfer(t.item, t.plan, 0.0, 0.0)
            for t in schedule.transfers
        ]
        found = invariants_of(check_schedule(items, schedule))
        assert "migration-makespan" in found


# ----------------------------------------------------------------------
# Link-layer properties
# ----------------------------------------------------------------------
class TestLinkProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_contention_holds_physics(self, seed):
        rng = RandomStreams(seed).stream("links")
        for _ in range(5):
            violations = fuzz_link_case(rng)
            assert violations == [], "\n".join(map(str, violations))

    def test_contention_never_speeds_a_stream_up(self):
        """Fair sharing: adding background streams cannot make a transfer
        finish earlier than it does alone."""
        spec = LinkSpec("solo", 10.0 * 1024 * MB, 1e-4)

        def run(background: int) -> float:
            sim = Simulator()
            link = FairShareLink(sim, spec)
            probe = link.transfer(512 * MB)
            for _ in range(background):
                link.transfer(256 * MB)
            sim.run_until_idle()
            assert probe.duration is not None
            return probe.duration

        alone = run(0)
        for n in (1, 2, 5):
            assert run(n) >= alone - 1e-9

    def test_rate_cap_lower_bounds_duration(self):
        sim = Simulator()
        link = FairShareLink(sim, LinkSpec("capped", 1024 * MB, 0.0))
        handle = link.transfer(100 * MB, max_rate=10 * MB)
        sim.run_until_idle()
        assert handle.duration == pytest.approx(10.0, rel=1e-6)
