"""Tests for the DistServe prefill/decode disaggregation baseline."""

from __future__ import annotations

import pytest

from repro.baselines.distserve import DistServeSystem
from repro.cluster.cluster import make_small_cluster
from repro.core.context import ServingContext
from repro.models.zoo import LLAMA2_7B
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workloads.requests import Request


def make_request(rid, prompt, output, t=0.0):
    return Request(
        rid=rid,
        model=LLAMA2_7B.name,
        arrival_time=t,
        prompt_tokens=prompt,
        output_tokens=output,
        slo_latency=10.0,
    )


@pytest.fixture
def distserve():
    sim = Simulator()
    streams = RandomStreams(seed=3)
    cluster = make_small_cluster(sim, n_servers=10, gpus_per_server=2)
    ctx = ServingContext.create(sim, cluster, streams)
    system = DistServeSystem(
        ctx, [LLAMA2_7B], initial_replicas=2, prefill_stages=2, decode_stages=8
    )
    return sim, system


class TestConstruction:
    def test_pools_use_different_granularities(self, distserve):
        __, system = distserve
        prefill_plan = system.plans[LLAMA2_7B.name]
        decode_plan = system.decode_plans[LLAMA2_7B.name]
        assert decode_plan.n_stages > prefill_plan.n_stages

    def test_invalid_fraction_rejected(self, distserve):
        sim, system = distserve
        with pytest.raises(ValueError, match="prefill_fraction"):
            DistServeSystem(system.ctx, [LLAMA2_7B], prefill_fraction=1.0)

    def test_invalid_threshold_rejected(self, distserve):
        sim, system = distserve
        with pytest.raises(ValueError, match="threshold"):
            DistServeSystem(system.ctx, [LLAMA2_7B], phase_ratio_threshold=0.0)


class TestClassification:
    def test_long_prompt_short_output_is_prefill(self, distserve):
        __, system = distserve
        assert system.classify(make_request(1, 2000, 10)) == "prefill"

    def test_chatty_request_is_decode(self, distserve):
        __, system = distserve
        assert system.classify(make_request(2, 500, 200)) == "decode"

    def test_zero_output_does_not_crash(self, distserve):
        __, system = distserve
        assert system.classify(make_request(3, 100, 0)) == "prefill"


class TestServing:
    def test_both_pools_deploy_and_serve(self, distserve):
        sim, system = distserve
        system.start()
        sim.run(until=200.0)  # loads finish
        prefill, decode = system.pool_counts(LLAMA2_7B.name)
        assert prefill >= 1
        assert decode >= 1

    def test_requests_route_by_phase(self, distserve):
        sim, system = distserve
        system.start()
        sim.run(until=200.0)
        now = sim.now
        for i in range(6):
            system.submit(make_request(i, 2000, 5, t=now))  # prefill-heavy
        for i in range(6, 10):
            system.submit(make_request(i, 200, 150, t=now))  # decode-heavy
        assert system.prefill_routed == 6
        assert system.decode_routed == 4

    def test_mixed_workload_completes_everywhere(self, distserve):
        sim, system = distserve
        system.start()
        sim.run(until=200.0)
        requests = [
            make_request(i, 2000 if i % 2 else 200, 5 if i % 2 else 100, t=sim.now)
            for i in range(20)
        ]
        for r in requests:
            system.submit(r)
        sim.run(until=sim.now + 600.0)
        done = sum(1 for r in requests if r.completed)
        assert done == 20

    def test_unknown_model_rejected(self, distserve):
        __, system = distserve
        bad = Request(1, "nope", 0.0, 10, 10, 1.0)
        with pytest.raises(KeyError):
            system.submit(bad)


class TestTeardown:
    def test_released_decode_replicas_leave_their_router(self, distserve):
        """The factory's teardown only knows the prefill routers; decode
        replicas must still be unhooked from their decode router on
        release (no zombie gateway entries)."""
        sim, system = distserve
        system.start()
        sim.run(until=200.0)
        decode_router = system.decode_routers[LLAMA2_7B.name]
        assert decode_router.active_replicas  # decode pool is serving
        for replica in list(decode_router.replicas):
            system.factory.release(replica)
        # Bounded run: the system is still live (periodic samplers tick),
        # so draining must finish within a generous window.
        sim.run(until=sim.now + 300.0)
        assert decode_router.replicas == []

    def test_shutdown_tears_down_both_pools(self, distserve):
        sim, system = distserve
        system.start()
        sim.run(until=200.0)
        system.shutdown()
        sim.run_until_idle()
        assert system.ctx.allocator.live == {}
        assert system.decode_routers[LLAMA2_7B.name].replicas == []
        assert system.routers[LLAMA2_7B.name].replicas == []
