"""Tests for serverless reclamation / failure injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_small_cluster
from repro.cluster.failures import (
    FailureInjector,
    ReclamationEvent,
    ReclamationPolicy,
    RecoveryTracker,
    VictimChoice,
)
from repro.core.context import ServingContext
from repro.core.flexpipe import FlexPipeSystem
from repro.models.zoo import LLAMA2_7B
from repro.simulation.engine import Simulator
from repro.simulation.processes import PeriodicProcess
from repro.simulation.randomness import RandomStreams
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.arrivals import PoissonArrivals
from repro.workloads.requests import RequestSampler


@pytest.fixture
def live_system():
    """A small FlexPipe deployment, settled and ready to serve."""
    sim = Simulator()
    streams = RandomStreams(seed=7)
    cluster = make_small_cluster(sim, n_servers=8, gpus_per_server=2)
    ctx = ServingContext.create(sim, cluster, streams)
    system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=2)
    system.start()
    sim.run(until=150.0)  # initial loads complete
    return sim, cluster, streams, system


class TestPolicy:
    def test_defaults_valid(self):
        policy = ReclamationPolicy()
        assert policy.choice is VictimChoice.SERVING_BIASED

    def test_bad_mtbf_rejected(self):
        with pytest.raises(ValueError, match="mtbf"):
            ReclamationPolicy(mtbf=0.0)

    def test_negative_downtime_rejected(self):
        with pytest.raises(ValueError, match="downtime"):
            ReclamationPolicy(downtime_mean=-1.0)


class TestEvent:
    def test_recovery_time_none_until_recovered(self):
        event = ReclamationEvent(time=10.0, gpu_id="g", downtime=5.0, replicas_hit=1)
        assert event.recovery_time is None
        event.recovered_at = 25.0
        assert event.recovery_time == 15.0


class TestInjection:
    def test_reclaim_drains_replicas_on_victim_gpu(self, live_system):
        sim, cluster, streams, system = live_system
        router = system.routers[LLAMA2_7B.name]
        before = len([r for r in router.replicas if r.accepting])
        assert before >= 1
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=1e9),
        )
        victim = router.replicas[0].stages[0].reservation.gpu
        injector._reclaim(victim)
        assert injector.events[0].replicas_hit >= 1
        assert LLAMA2_7B.name in injector.events[0].models_hit
        after = len([r for r in router.replicas if r.accepting])
        assert after == before - injector.events[0].replicas_hit

    def test_reclaim_drains_loading_replicas_too(self, live_system):
        """A replica still LOADING is in no router, but its reservations
        already occupy the victim GPU — reclamation must drain it, and it
        must never activate on the reclaimed device afterwards."""
        sim, cluster, streams, system = live_system
        state = system._models[LLAMA2_7B.name]
        plan = state.ladder.plan(state.current_stages)
        loading = system.factory.deploy(
            system.profiles[LLAMA2_7B.name], plan, batch_cap=system.batch_cap
        )
        assert loading.state.value == "loading"
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=1e9, downtime_mean=10.0),
        )
        victim = loading.stages[0].reservation.gpu
        event = injector.inject(victim)
        assert event is not None and event.replicas_hit >= 1
        assert loading.state.value == "released"
        # Bounded run (the system's periodic loops keep ticking): the
        # in-flight load completes harmlessly within the window.
        sim.run(until=sim.now + 120.0)
        assert loading.activated_at is None
        assert all(s.reservation.released for s in loading.stages)

    def test_memory_freed_by_draining_victims_stays_blocked(self, live_system):
        """Reallocation must not land on a reclaimed GPU mid-downtime:
        memory the draining victims release is absorbed by the blocker,
        and even a packed victim (zero free bytes) gets a restore."""
        sim, cluster, streams, system = live_system
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            # The drawn downtime is exponential(mean); a large mean keeps
            # this seed's draw comfortably above the drain time.
            ReclamationPolicy(mtbf=1e9, downtime_mean=2000.0),
        )
        router = system.routers[LLAMA2_7B.name]
        victim = router.replicas[0].stages[0].reservation.gpu
        start = sim.now
        event = injector.inject(victim)
        assert event is not None and event.replicas_hit >= 1
        assert event.downtime > 10.0  # long enough for the victims to drain
        # Let the victims drain well inside the downtime window: their
        # freed bytes must be re-absorbed, not become allocatable.
        sim.run(until=start + event.downtime - 2.0)
        assert victim.gid in injector._blocked
        # The blocker leaves a sub-byte float-safety hair unabsorbed.
        assert victim.free_memory == pytest.approx(0.0, abs=1e-2)
        # After the downtime the blocker releases what it absorbed.
        sim.run(until=start + event.downtime + 5.0)
        assert victim.gid not in injector._blocked
        assert victim.free_memory > 0

    def test_reclamation_aborts_inflight_refactor_inside_downtime_window(
        self, live_system
    ):
        """An in-flight refactor's *prepared* reservations are stages of
        no replica, so the reclamation drain cannot reach them.  The
        executor-level hook must abort the transition and release the
        prepared memory the moment the victim GPU is cordoned — inside
        the downtime window, not at the (cancelled) switch."""
        sim, cluster, streams, system = live_system
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=1e9, downtime_mean=2000.0),
        )
        state = system._models[LLAMA2_7B.name]
        replica = system.routers[LLAMA2_7B.name].active_replicas[0]
        target = next(
            c for c in state.ladder.stage_counts if c != replica.plan.n_stages
        )
        assert state.executor.refactor(replica, target)
        stage_gpus = {
            s.gpu
            for r in system.all_replicas()
            for s in (*r.stages, *r._retired_stages)
        }
        prepared = [
            res
            for res in system.ctx.allocator.live.values()
            if res.gpu not in stage_gpus
        ]
        assert prepared, "the transition must have prepared fresh GPUs"
        victim = prepared[0].gpu
        t_reclaim = sim.now
        event = injector.inject(victim)
        assert event is not None
        # Released at the reclamation instant — the very start of the
        # downtime window — not after the preparation window elapses.
        assert sim.now == t_reclaim
        assert all(res.released for res in prepared)
        assert state.executor.transitions_aborted == 1
        assert not state.executor.refactoring(replica)
        # No serving allocation remains on the victim; only the injector's
        # own blocker occupies it for the downtime.
        assert all(
            res.gpu is not victim
            for res in system.ctx.allocator.live.values()
        )
        sim.run(until=t_reclaim + 30.0)
        assert state.executor.transitions_completed == 0
        assert replica.plan.n_stages != target  # still on the old chain
        assert replica.anomalies == []

    def test_reclaimed_gpu_is_cordoned_against_placement(self, live_system):
        """Even in the instant between a victim freeing memory and the
        blocker absorbing it, the allocator must refuse to place serving
        stages on a reclaimed GPU."""
        sim, cluster, streams, system = live_system
        from repro.cluster.allocator import AllocationError

        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=1e9, downtime_mean=2000.0),
        )
        victim = system.routers[LLAMA2_7B.name].replicas[0].stages[0].reservation.gpu
        assert injector.inject(victim) is not None
        assert victim.cordoned
        # Simulate freshly-freed memory before the next top-up tick: the
        # cordon, not the blocker, must keep placement off the device.
        with pytest.raises(AllocationError):
            system.ctx.allocator.reserve_on(LLAMA2_7B.name, victim, 1024.0)
        assert victim not in system.ctx.allocator.candidates(0.0)
        sim.run(until=sim.now + injector.events[0].downtime + 5.0)
        assert not victim.cordoned

    def test_reclaimed_gpu_blocked_then_restored(self, live_system):
        sim, cluster, streams, system = live_system
        rng = np.random.default_rng(0)
        injector = FailureInjector(
            sim, cluster, rng, system, ReclamationPolicy(mtbf=1e9, downtime_mean=30.0)
        )
        idle = next(g for g in cluster.gpus if not g.model_tags)
        free_before = idle.free_memory
        injector._reclaim(idle)
        assert idle.free_memory == pytest.approx(0.0, abs=1.0)
        sim.run(until=sim.now + 500.0)
        assert idle.free_memory >= free_before * 0.99

    def test_poisson_schedule_fires_events(self, live_system):
        sim, cluster, streams, system = live_system
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=20.0, downtime_mean=10.0),
        )
        injector.start()
        sim.run(until=sim.now + 200.0)
        injector.stop()
        assert len(injector.events) >= 3

    def test_stop_halts_injection(self, live_system):
        sim, cluster, streams, system = live_system
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=5.0),
        )
        injector.start()
        sim.run(until=sim.now + 30.0)
        injector.stop()
        count = len(injector.events)
        sim.run(until=sim.now + 100.0)
        assert len(injector.events) == count

    def test_victim_choice_serving_biased_hits_models(self, live_system):
        sim, cluster, streams, system = live_system
        rng = np.random.default_rng(1)
        injector = FailureInjector(
            sim, cluster, rng, system,
            ReclamationPolicy(mtbf=1e9, choice=VictimChoice.SERVING_BIASED),
        )
        victim = injector._pick_victim()
        assert victim.model_tags  # hosts at least one model

    def test_victim_choice_idle_first_spares_models(self, live_system):
        sim, cluster, streams, system = live_system
        rng = np.random.default_rng(2)
        injector = FailureInjector(
            sim, cluster, rng, system,
            ReclamationPolicy(mtbf=1e9, choice=VictimChoice.IDLE_FIRST),
        )
        victim = injector._pick_victim()
        assert not victim.model_tags

    def test_summary_shape(self, live_system):
        sim, cluster, streams, system = live_system
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=30.0, downtime_mean=10.0),
        )
        injector.start()
        sim.run(until=sim.now + 120.0)
        summary = injector.summary()
        assert summary["events"] == len(injector.events)
        assert summary["replicas_hit"] >= 0
        assert set(summary) >= {"events", "recovered", "mean_recovery_s"}


class TestRecovery:
    def test_system_recovers_capacity_after_reclamation(self, live_system):
        """FlexPipe's own control loop restores the drained replica."""
        sim, cluster, streams, system = live_system
        # Live traffic so the autoscaler sees demand.
        generator = WorkloadGenerator(
            sim,
            PoissonArrivals(4.0, streams.stream("arrivals")),
            RequestSampler(LLAMA2_7B.name, streams.stream("requests")),
            system.submit,
            duration=300.0,
        )
        tracker = RecoveryTracker(sim)
        injector = FailureInjector(
            sim, cluster, streams.stream("failures"), system,
            ReclamationPolicy(mtbf=1e9, downtime_mean=20.0),
            tracker=tracker,
        )
        poller = PeriodicProcess(sim, 1.0, tracker.poll, start_delay=1.0)
        router = system.routers[LLAMA2_7B.name]
        victim = router.replicas[0].stages[0].reservation.gpu
        injector._reclaim(victim)
        assert tracker.open_events == 1
        sim.run(until=sim.now + 400.0)
        assert generator.offered > 0
        poller.stop()
        event = injector.events[0]
        assert event.recovered_at is not None
        assert event.recovery_time > 0.0
