"""Multi-tenant QoS control plane: classes, scheduling, admission,
signals, and the end-to-end priority-inversion property."""

from __future__ import annotations


import pytest

from repro.core.admission import SLOFeasiblePolicy
from repro.qos import (
    SLO_CLASSES,
    AttainmentTracker,
    PriorityPendingQueue,
    SLOClass,
    TenantAdmissionController,
    WeightedFairShedPolicy,
    effective_deadline,
    get_slo_class,
    request_priority,
)
from repro.workloads.requests import Request


def make_request(rid=0, model="m", t=0.0, slo=5.0, slo_class=None):
    return Request(
        rid=rid,
        model=model,
        arrival_time=t,
        prompt_tokens=100,
        output_tokens=10,
        slo_latency=slo,
        slo_class=slo_class,
    )


# ----------------------------------------------------------------------
# Class registry
# ----------------------------------------------------------------------
class TestClasses:
    def test_catalog_has_the_four_classes(self):
        assert set(SLO_CLASSES) == {
            "interactive", "standard", "batch", "best_effort",
        }

    def test_priorities_strictly_ordered_by_urgency(self):
        ordered = sorted(SLO_CLASSES.values(), key=lambda c: c.priority)
        names = [c.name for c in ordered]
        assert names == ["interactive", "standard", "batch", "best_effort"]
        targets = [c.latency_target for c in ordered]
        assert targets == sorted(targets)  # more urgent = tighter deadline
        weights = [c.weight for c in ordered]
        assert weights == sorted(weights, reverse=True)

    def test_standard_matches_the_historical_default(self):
        """Annotating a tenant `standard` must not change its workload."""
        assert SLO_CLASSES["standard"].latency_target == 10.0

    def test_unknown_class_rejected(self):
        with pytest.raises(KeyError, match="available"):
            get_slo_class("gold")

    def test_validation(self):
        with pytest.raises(ValueError, match="latency"):
            SLOClass("x", latency_target=0.0, priority=0, weight=1.0)
        with pytest.raises(ValueError, match="shed"):
            SLOClass("x", latency_target=1.0, priority=0, weight=1.0, shed="maybe")

    def test_effective_deadline_prefers_the_request_class(self):
        classed = make_request(slo=2.5, slo_class="batch")
        assert effective_deadline(classed) == SLO_CLASSES["batch"].latency_target
        unclassed = make_request(slo=7.0)
        assert effective_deadline(unclassed) == 7.0

    def test_request_priority_resolution_order(self):
        assert request_priority(make_request(slo_class="interactive")) == 0
        assert request_priority(make_request(), SLO_CLASSES["batch"]) == 2
        assert request_priority(make_request()) == SLO_CLASSES["standard"].priority


# ----------------------------------------------------------------------
# SLO-feasibility uses the request's own class deadline (satellite fix)
# ----------------------------------------------------------------------
class TestSLOFeasibleClassDeadline:
    def make_policy(self, queue=100, capacity=10.0, service=1.0):
        return SLOFeasiblePolicy(
            lambda: queue, lambda: capacity, lambda r: service
        )

    def test_batch_request_not_shed_against_interactive_deadline(self):
        """Regression: estimated completion 11 s is infeasible for the
        frozen interactive-grade slo_latency the sampler stamped, but the
        request is batch class (30 s target) — it must be admitted."""
        policy = self.make_policy(queue=100, capacity=10.0, service=1.0)
        mislabeled = make_request(slo=2.5, slo_class="batch")
        assert policy.admit(mislabeled)
        # Sanity: the same shape *without* a class keeps the old verdict.
        assert not policy.admit(make_request(slo=2.5))

    def test_interactive_request_judged_at_interactive_deadline(self):
        policy = self.make_policy(queue=100, capacity=10.0, service=1.0)
        request = make_request(slo=60.0, slo_class="interactive")
        assert not policy.admit(request)  # 11 s > the class's 2.5 s


# ----------------------------------------------------------------------
# Priority pending queue
# ----------------------------------------------------------------------
class TestPriorityPendingQueue:
    def make_queue(self, clock=lambda: 0.0, aging=None):
        return PriorityPendingQueue(
            clock, lambda r: request_priority(r), aging=aging
        )

    def test_single_class_is_fifo(self):
        queue = self.make_queue()
        for i in range(5):
            queue.append(make_request(i, slo_class="batch"))
        assert [queue.popleft().rid for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_strict_priority_across_classes_fifo_within(self):
        queue = self.make_queue()
        queue.append(make_request(0, slo_class="batch"))
        queue.append(make_request(1, slo_class="interactive"))
        queue.append(make_request(2, slo_class="batch"))
        queue.append(make_request(3, slo_class="interactive"))
        queue.append(make_request(4, slo_class="standard"))
        order = [queue.popleft().rid for _ in range(5)]
        assert order == [1, 3, 4, 0, 2]

    def test_unclassed_requests_rank_as_standard(self):
        queue = self.make_queue()
        queue.append(make_request(0, slo_class="batch"))
        queue.append(make_request(1))  # standard by default
        assert queue.popleft().rid == 1

    def test_len_bool_iter_clear(self):
        queue = self.make_queue()
        assert not queue
        for i in range(3):
            queue.append(make_request(i, slo_class="interactive" if i else "batch"))
        assert len(queue) == 3 and queue
        assert {r.rid for r in queue} == {0, 1, 2}
        queue.clear()
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            self.make_queue().popleft()

    def test_aging_promotes_a_starving_batch_request(self):
        """Anti-starvation: after `aging * rank-gap` seconds a batch
        request overtakes fresh interactive arrivals."""
        clock = {"now": 0.0}
        queue = self.make_queue(clock=lambda: clock["now"], aging=5.0)
        queue.append(make_request(0, slo_class="batch"))
        clock["now"] = 11.0  # batch waited 11 s -> effective rank 0
        queue.append(make_request(1, slo_class="interactive"))
        assert queue.popleft().rid == 0
        assert queue.popleft().rid == 1

    def test_without_aging_starvation_is_possible(self):
        clock = {"now": 0.0}
        queue = self.make_queue(clock=lambda: clock["now"], aging=None)
        queue.append(make_request(0, slo_class="batch"))
        clock["now"] = 1000.0
        queue.append(make_request(1, slo_class="interactive"))
        assert queue.popleft().rid == 1

    def test_bad_aging_rejected(self):
        with pytest.raises(ValueError, match="aging"):
            self.make_queue(aging=0.0)


# ----------------------------------------------------------------------
# Weighted-fair shedding
# ----------------------------------------------------------------------
class TestWeightedFairShed:
    def run_policy(self, slo_class, overloaded=True, n=100):
        policy = WeightedFairShedPolicy(
            lambda: overloaded, get_slo_class(slo_class)
        )
        return sum(0 if policy.admit(make_request(i)) else 1 for i in range(n))

    def test_protect_never_sheds(self):
        assert self.run_policy("interactive") == 0

    def test_first_sheds_everything_under_overload(self):
        assert self.run_policy("best_effort") == 100

    def test_fair_shed_inverse_to_weight(self):
        # batch weight 2 -> 1/2 shed; standard weight 4 -> 1/4 shed.
        assert self.run_policy("batch") == 50
        assert self.run_policy("standard") == 25

    def test_nothing_sheds_off_overload(self):
        for name in SLO_CLASSES:
            assert self.run_policy(name, overloaded=False) == 0

    def test_credit_resets_when_overload_clears(self):
        state = {"over": True}
        policy = WeightedFairShedPolicy(
            lambda: state["over"], get_slo_class("batch")
        )
        policy.admit(make_request(0))  # accrues half a credit
        state["over"] = False
        policy.admit(make_request(1))  # calm tick resets the credit
        state["over"] = True
        # A fresh overload starts from zero: first request admitted again.
        assert policy.admit(make_request(2))

    def test_determinism(self):
        a = [
            WeightedFairShedPolicy(lambda: True, get_slo_class("batch")).admit(
                make_request(i)
            )
            for i in range(10)
        ]
        # Each fresh policy gives the same first verdict; one policy
        # alternates deterministically.
        policy = WeightedFairShedPolicy(lambda: True, get_slo_class("batch"))
        b = [policy.admit(make_request(i)) for i in range(10)]
        assert all(a)
        assert b == [True, False] * 5


# ----------------------------------------------------------------------
# Tenant admission controller
# ----------------------------------------------------------------------
class TestTenantAdmissionController:
    def make_controller(self, sink=None, **kwargs):
        return TenantAdmissionController(sink or (lambda r: None), **kwargs)

    def test_books_balance_per_tenant_and_aggregate(self):
        controller = self.make_controller()
        shed_all = WeightedFairShedPolicy(
            lambda: True, get_slo_class("best_effort")
        )
        controller.register("be", get_slo_class("best_effort"), [shed_all])
        controller.register("it", get_slo_class("interactive"), [])
        for i in range(10):
            controller.submit(make_request(i, model="be"))
            controller.submit(make_request(100 + i, model="it"))
        stats = controller.tenant_stats()
        assert stats["be"].offered == 10 and stats["be"].rejected == 10
        assert stats["it"].offered == 10 and stats["it"].admitted == 10
        agg = controller.stats
        assert agg.offered == agg.admitted + agg.rejected == 20
        for t in stats.values():
            assert t.offered == t.admitted + t.rejected

    def test_unregistered_tenant_passes_through(self):
        seen = []
        controller = self.make_controller(sink=seen.append)
        controller.submit(make_request(0, model="stranger"))
        assert len(seen) == 1
        assert controller.stats.admitted == 1
        assert controller.tenant_stats() == {}

    def test_shed_marks_request_and_fires_hooks(self):
        rejected, shed_models = [], []
        controller = TenantAdmissionController(
            lambda r: None,
            on_reject=rejected.append,
            on_shed=shed_models.append,
        )
        controller.register(
            "be",
            get_slo_class("best_effort"),
            [WeightedFairShedPolicy(lambda: True, get_slo_class("best_effort"))],
        )
        request = make_request(model="be")
        controller.submit(request)
        assert request.rejected
        assert rejected == [request]
        assert shed_models == ["be"]

    def test_double_registration_rejected(self):
        controller = self.make_controller()
        controller.register("m", get_slo_class("standard"), [])
        with pytest.raises(ValueError, match="already"):
            controller.register("m", get_slo_class("batch"), [])


# ----------------------------------------------------------------------
# Attainment tracker
# ----------------------------------------------------------------------
class TestAttainmentTracker:
    def make_tracker(self, clock):
        return AttainmentTracker(lambda: clock["now"], window=10.0)

    def complete(self, model, latency, slo_class=None, rid=0):
        request = make_request(rid, model=model, slo=5.0, slo_class=slo_class)
        request.completion_time = request.arrival_time + latency
        request.exec_time = latency / 2
        return request

    def test_attainment_none_before_data_then_windowed(self):
        clock = {"now": 0.0}
        tracker = self.make_tracker(clock)
        assert tracker.attainment("m") is None
        tracker.observe_completion(self.complete("m", latency=1.0))
        tracker.observe_completion(self.complete("m", latency=9.0))  # miss
        assert tracker.attainment("m") == 0.5
        clock["now"] = 20.0  # both fall out of the window
        assert tracker.attainment("m") is None

    def test_sheds_count_as_misses(self):
        clock = {"now": 0.0}
        tracker = self.make_tracker(clock)
        tracker.observe_completion(self.complete("m", latency=1.0))
        tracker.observe_shed("m")
        assert tracker.attainment("m") == 0.5

    def test_completion_judged_against_class_deadline(self):
        clock = {"now": 0.0}
        tracker = self.make_tracker(clock)
        # 9 s latency: a miss at the unclassed 5 s target, a hit for batch.
        tracker.observe_completion(
            self.complete("m", latency=9.0, slo_class="batch")
        )
        assert tracker.attainment("m") == 1.0

    def test_completion_rate_cold_start_is_optimistic(self):
        clock = {"now": 0.0}
        tracker = self.make_tracker(clock)
        assert tracker.completion_rate("m") == float("inf")
        tracker.observe_shed("m")  # sheds are not completions
        assert tracker.completion_rate("m") == float("inf")
        clock["now"] = 2.0
        tracker.observe_completion(self.complete("m", latency=1.0))
        assert tracker.completion_rate("m") == pytest.approx(0.5)

    def test_pressure_zero_while_attaining_scales_with_weight(self):
        clock = {"now": 0.0}
        tracker = self.make_tracker(clock)
        assert tracker.pressure("m", SLO_CLASSES["interactive"]) == 0.0
        for i in range(10):
            tracker.observe_completion(self.complete("m", latency=9.0, rid=i))
        hot = tracker.pressure("m", SLO_CLASSES["interactive"])
        cool = tracker.pressure("m", SLO_CLASSES["batch"])
        assert hot > cool > 0.0
        assert hot / cool == pytest.approx(
            SLO_CLASSES["interactive"].weight / SLO_CLASSES["batch"].weight
        )


# ----------------------------------------------------------------------
# System integration: enable_qos
# ----------------------------------------------------------------------
class TestEnableQoS:
    @pytest.fixture
    def system(self):
        from repro.cluster.cluster import make_small_cluster
        from repro.core.context import ServingContext
        from repro.core.flexpipe import FlexPipeSystem
        from repro.models.zoo import BERT_21B, LLAMA2_7B
        from repro.simulation.engine import Simulator
        from repro.simulation.randomness import RandomStreams

        sim = Simulator()
        ctx = ServingContext.create(
            sim, make_small_cluster(sim), RandomStreams(3)
        )
        return FlexPipeSystem(ctx, [LLAMA2_7B, BERT_21B], initial_replicas=1)

    def test_disabled_by_default(self, system):
        assert system.qos_tracker is None
        assert system.qos_classes == {}
        from collections import deque

        for router in system.routers.values():
            assert isinstance(router.pending, deque)

    def test_enable_installs_priority_queues_and_tracker(self, system):
        system.enable_qos({"LLAMA2-7B": SLO_CLASSES["interactive"]})
        assert system.qos_tracker is not None
        for router in system.routers.values():
            assert isinstance(router.pending, PriorityPendingQueue)
        assert system.qos_class_of("LLAMA2-7B").name == "interactive"
        assert system.qos_class_of("BERT-21B").name == "standard"

    def test_enable_wires_autoscaler_pressure(self, system):
        system.enable_qos({"LLAMA2-7B": SLO_CLASSES["interactive"]})
        for state in system._models.values():
            assert state.autoscaler.slo_pressure is not None
            assert state.autoscaler.slo_pressure() == 0.0  # no data yet

    def test_enable_rejects_unknown_model(self, system):
        with pytest.raises(KeyError, match="does not serve"):
            system.enable_qos({"GPT-5": SLO_CLASSES["interactive"]})

    def test_pending_requests_survive_the_queue_swap(self, system):
        router = system.routers["LLAMA2-7B"]
        for i in range(3):
            router.submit(make_request(i, model="LLAMA2-7B"))
        assert len(router.pending) == 3  # no active replica yet
        system.enable_qos({"LLAMA2-7B": SLO_CLASSES["interactive"]})
        assert len(router.pending) == 3
        assert router.submitted == 3  # conservation counters untouched

    def test_completions_feed_the_tracker(self, system):
        system.enable_qos({"LLAMA2-7B": SLO_CLASSES["interactive"]})
        request = make_request(0, model="LLAMA2-7B", slo_class="interactive")
        request.completion_time = request.arrival_time + 1.0
        system._on_request_complete(request)
        assert system.qos_tracker.attainment("LLAMA2-7B") == 1.0

    def test_enable_arms_the_resource_arbiter(self, system):
        """enable_qos reaches the allocator: class ranks for deploy
        contention plus the per-tenant share caps."""
        allocator = system.ctx.allocator
        assert not allocator.arbitration_enabled
        system.enable_qos(
            {"LLAMA2-7B": SLO_CLASSES["interactive"]},
            share_caps={"BERT-21B": 0.4},
        )
        assert allocator.arbitration_enabled
        assert allocator.qos_priority_of("LLAMA2-7B") == 0
        assert allocator.qos_priority_of("BERT-21B") == 1  # standard default
        assert allocator.share_caps == {"BERT-21B": 0.4}

    def test_share_cap_for_unknown_model_rejected(self, system):
        with pytest.raises(KeyError, match="does not serve"):
            system.enable_qos(
                {"LLAMA2-7B": SLO_CLASSES["interactive"]},
                share_caps={"GPT-5": 0.5},
            )

    def test_enable_installs_priority_batchers(self, system):
        """Existing replicas swap to class-priority batch formation; the
        factory mints future replicas with it directly."""
        from repro.pipeline.batching import PriorityBatcher

        system.start()
        system.sim.run(until=120.0)  # initial loads complete
        replicas = system.all_replicas()
        assert replicas
        assert all(
            not isinstance(r.batcher, PriorityBatcher) for r in replicas
        )
        system.enable_qos({"LLAMA2-7B": SLO_CLASSES["interactive"]})
        assert all(isinstance(r.batcher, PriorityBatcher) for r in replicas)
        assert system.factory.batch_priority_of is not None
        # A classed request of the interactive tenant outranks the other
        # tenant's standard default inside the same replica.
        priority_of = system.factory.batch_priority_of
        assert priority_of(
            make_request(0, model="LLAMA2-7B", slo_class="interactive")
        ) < priority_of(make_request(1, model="BERT-21B"))

    def test_enable_wires_autoscaler_share_headroom(self, system):
        import math

        system.enable_qos(
            {"LLAMA2-7B": SLO_CLASSES["interactive"]},
            share_caps={"LLAMA2-7B": 0.25},
        )
        capped = system._models["LLAMA2-7B"].autoscaler
        uncapped = system._models["BERT-21B"].autoscaler
        assert capped.share_headroom is not None
        fleet = system.ctx.allocator.fleet_memory()
        assert capped.share_headroom() <= 0.25 * fleet
        assert math.isinf(uncapped.share_headroom())
