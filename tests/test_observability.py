"""Causal request tracing, the fleet flight recorder, and tail
attribution: unit tests for the span/recorder/attribution layer plus
traced-scenario integration (span conservation, tracing-off identity,
sharded merges with provenance, the ``repro trace`` CLI)."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cli import build_parser, main
from repro.observability import (
    BUCKETS,
    AttributionReport,
    FinalTrace,
    FleetEvent,
    FlightRecorder,
    Span,
    SpanTracer,
    attribute_tail,
    bucket_seconds,
    conservation_violations,
    merge_shard_traces,
    perfetto_trace,
)
from repro.observability.tracer import PHASE_BUCKET, _split_by_windows
from repro.scenarios import (
    ArrivalSegment,
    ModelScript,
    ScenarioCase,
    ScenarioEvent,
    ScenarioSpec,
    run_scenario_case,
)
from repro.scenarios.driver import ScenarioDriver
from repro.validation.auditor import InvariantAuditor

# A small traced workhorse: two tenants, a refactor and a reclaim so the
# refactor-pause and preemption machinery runs, pipelined loading so the
# cold-gate path runs.
MINI = ScenarioSpec(
    name="obs-mini",
    cluster="small",
    settle=60.0,
    drain=10.0,
    models=(
        ModelScript(
            "LLAMA2-7B",
            segments=(ArrivalSegment("steady", duration=20.0, qps=5.0),),
        ),
        ModelScript(
            "WHISPER-9B",
            segments=(
                ArrivalSegment("burst", start=4.0, duration=12.0, qps=3.0, cv=4.0),
            ),
        ),
    ),
    events=(
        ScenarioEvent(at=6.0, action="reclaim"),
        ScenarioEvent(at=10.0, action="refactor", model="LLAMA2-7B"),
        ScenarioEvent(at=14.0, action="scale_out", model="WHISPER-9B"),
    ),
    admission_cap=64,
    pipelined_loading=True,
)


def make_trace(
    rid=0,
    model="M",
    slo_class=None,
    arrival=0.0,
    prefill_done=1.0,
    completion=2.0,
    spans=(),
    shard=None,
):
    return FinalTrace(
        rid=rid,
        model=model,
        slo_class=slo_class,
        arrival=arrival,
        prefill_done=prefill_done,
        completion=completion,
        replica="r0",
        spans=tuple(spans),
        shard=shard,
    )


def tiling_spans(arrival, completion, phases):
    """Spans for ``phases`` = [(phase, duration), ...] tiling the interval."""
    spans, cursor = [], arrival
    for phase, duration in phases:
        spans.append(Span(phase, PHASE_BUCKET[phase], cursor, cursor + duration))
        cursor += duration
    assert cursor == pytest.approx(completion)
    return spans


# ----------------------------------------------------------------------
# Span / tracer units
# ----------------------------------------------------------------------
class TestSpanUnits:
    def test_phase_buckets_are_closed(self):
        assert set(PHASE_BUCKET.values()) == set(BUCKETS)

    def test_span_duration(self):
        assert Span("prefill", "prefill", 1.0, 3.5).duration == pytest.approx(2.5)

    def test_final_trace_metrics_and_retag(self):
        trace = make_trace(arrival=1.0, prefill_done=2.5, completion=4.0)
        assert trace.ttft == pytest.approx(1.5)
        assert trace.latency == pytest.approx(3.0)
        tagged = trace.retagged(3)
        assert tagged.shard == 3
        assert trace.shard is None  # immutable original

    def test_split_by_windows_no_windows(self):
        assert _split_by_windows(0.0, 2.0, []) == [(0.0, 2.0, False)]

    def test_split_by_windows_interior_window(self):
        segments = _split_by_windows(0.0, 10.0, [[2.0, 5.0]])
        assert segments == [
            (0.0, 2.0, False),
            (2.0, 5.0, True),
            (5.0, 10.0, False),
        ]

    def test_split_by_windows_open_window_swallows_tail(self):
        segments = _split_by_windows(0.0, 10.0, [[4.0, None]])
        assert segments == [(0.0, 4.0, False), (4.0, 10.0, True)]

    def test_split_by_windows_disjoint_interval(self):
        assert _split_by_windows(0.0, 2.0, [[5.0, 6.0]]) == [(0.0, 2.0, False)]

    def test_split_empty_interval(self):
        assert _split_by_windows(3.0, 3.0, [[0.0, 10.0]]) == []

    def test_refactor_windows_pairing(self):
        tracer = SpanTracer()
        tracer.refactor_begin("r0", 5.0)
        tracer.refactor_end("r0", 8.0)
        tracer.refactor_begin("r0", 12.0)
        assert tracer.refactor_windows["r0"] == [[5.0, 8.0], [12.0, None]]
        # An end with no open window is a no-op, never a crash.
        tracer.refactor_end("r1", 1.0)
        assert "r1" not in tracer.refactor_windows


# ----------------------------------------------------------------------
# Flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_records_structured_events(self):
        recorder = FlightRecorder()
        recorder.record(1.0, "deploy", replica="r0", warm=True)
        (event,) = recorder.events
        assert event.kind == "deploy"
        assert event.time == 1.0
        assert event.detail == {"replica": "r0", "warm": True}
        assert event.seq == 1

    def test_ring_buffer_bounds_memory(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(float(i), "tick", i=i)
        assert len(recorder.events) == 4
        assert [e.detail["i"] for e in recorder.events] == [6, 7, 8, 9]
        assert recorder.evicted == 6
        assert recorder.recorded == 10

    def test_counter_sampling_is_deterministic(self):
        recorder = FlightRecorder(sample_every=3)
        for i in range(9):
            recorder.record(float(i), "tick", i=i)
        assert [e.detail["i"] for e in recorder.events] == [0, 3, 6]
        assert recorder.sampled_out == 6
        assert recorder.seen == 9

    def test_sampling_counts_per_kind(self):
        recorder = FlightRecorder(sample_every=2)
        for i in range(4):
            recorder.record(float(i), "a", i=i)
            recorder.record(float(i), "b", i=i)
        assert [e.detail["i"] for e in recorder.by_kind("a")] == [0, 2]
        assert [e.detail["i"] for e in recorder.by_kind("b")] == [0, 2]

    def test_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError, match="sample_every"):
            FlightRecorder(sample_every=0)

    def test_retagged_event(self):
        event = FleetEvent(1, 2.0, "deploy")
        assert event.retagged(2).shard == 2
        assert event.shard is None


# ----------------------------------------------------------------------
# Conservation checking
# ----------------------------------------------------------------------
class TestConservation:
    def test_exact_tiling_passes(self):
        trace = make_trace(
            spans=tiling_spans(
                0.0, 2.0, [("batch-formation", 0.5), ("prefill", 0.5), ("decode", 1.0)]
            )
        )
        assert conservation_violations([trace]) == []

    def test_gap_detected(self):
        spans = [
            Span("batch-formation", "queue", 0.0, 0.5),
            Span("prefill", "prefill", 1.0, 2.0),  # 0.5 s hole
        ]
        (problem,) = conservation_violations([make_trace(spans=spans)])
        assert "gap" in problem

    def test_overlap_detected(self):
        spans = [
            Span("batch-formation", "queue", 0.0, 1.2),
            Span("prefill", "prefill", 1.0, 2.0),
        ]
        (problem,) = conservation_violations([make_trace(spans=spans)])
        assert "overlap" in problem

    def test_wrong_endpoint_detected(self):
        spans = [Span("decode", "decode", 0.0, 1.5)]
        (problem,) = conservation_violations([make_trace(spans=spans)])
        assert "completion" in problem

    def test_missing_spans_detected(self):
        (problem,) = conservation_violations([make_trace(spans=())])
        assert "no spans" in problem

    def test_tolerance_scales_with_magnitude(self):
        # One float ulp of drift at t=1e6 must not trip the invariant.
        t1 = 1e6 + 0.5
        spans = [
            Span("batch-formation", "queue", 1e6, t1),
            Span("decode", "decode", t1 + 1e-7, 1e6 + 2.0),
        ]
        trace = make_trace(arrival=1e6, prefill_done=1e6 + 1.0, completion=1e6 + 2.0, spans=spans)
        assert conservation_violations([trace]) == []


# ----------------------------------------------------------------------
# Tail attribution
# ----------------------------------------------------------------------
class TestAttribution:
    def test_empty_population(self):
        report = attribute_tail([])
        assert report.tail_count == 0
        assert report.attributed_fraction == 1.0

    def test_bucket_seconds_clips_to_cutoff(self):
        trace = make_trace(
            spans=tiling_spans(0.0, 2.0, [("batch-formation", 1.0), ("decode", 1.0)])
        )
        full = bucket_seconds(trace)
        assert full["queue"] == pytest.approx(1.0)
        assert full["decode"] == pytest.approx(1.0)
        ttft = bucket_seconds(trace, cutoff=1.5)
        assert ttft["queue"] == pytest.approx(1.0)
        assert ttft["decode"] == pytest.approx(0.5)

    def test_tail_selection_and_fraction(self):
        traces = [
            make_trace(
                rid=i,
                model="A" if i % 2 else "B",
                slo_class="interactive",
                arrival=0.0,
                prefill_done=float(i + 1),
                completion=float(i + 1),
                spans=tiling_spans(
                    0.0, i + 1.0, [("park", i + 0.5), ("prefill", 0.5)]
                ),
            )
            for i in range(10)
        ]
        report = attribute_tail(traces, metric="ttft", percentile=90.0)
        assert report.tail_count == 1  # only the slowest survives p90
        assert report.threshold == pytest.approx(9.1)
        assert report.total_seconds == pytest.approx(10.0)
        assert report.attributed_fraction == pytest.approx(1.0)
        assert report.buckets["cold-load"] == pytest.approx(9.5)
        assert report.buckets["prefill"] == pytest.approx(0.5)
        assert set(report.by_tenant) == {"A"}
        assert set(report.by_class) == {"interactive"}

    def test_metric_validated(self):
        with pytest.raises(ValueError, match="metric"):
            attribute_tail([make_trace()], metric="nope")

    def test_report_fraction_guard(self):
        report = AttributionReport("ttft", 99.0, 0.0, 0, 0.0)
        assert report.attributed_fraction == 1.0


# ----------------------------------------------------------------------
# Shard merge + Perfetto export
# ----------------------------------------------------------------------
class TestMergeAndExport:
    def test_merge_retags_and_orders(self):
        t0 = make_trace(rid=7, arrival=5.0, spans=())
        t1 = make_trace(rid=3, arrival=1.0, spans=())
        e0 = FleetEvent(1, 9.0, "deploy")
        e1 = FleetEvent(1, 2.0, "deploy")
        traces, events = merge_shard_traces([(0, [t0], [e0]), (1, [t1], [e1])])
        assert [(t.rid, t.shard) for t in traces] == [(3, 1), (7, 0)]
        assert [(e.time, e.shard) for e in events] == [(2.0, 1), (9.0, 0)]

    def test_merge_is_enumeration_order_invariant(self):
        shards = [
            (0, [make_trace(rid=1, arrival=2.0)], []),
            (1, [make_trace(rid=2, arrival=1.0)], []),
        ]
        forward, _ = merge_shard_traces(shards)
        backward, _ = merge_shard_traces(list(reversed(shards)))
        assert forward == backward

    def test_perfetto_export_shape(self):
        trace = make_trace(
            shard=2,
            spans=tiling_spans(0.0, 2.0, [("batch-formation", 1.0), ("decode", 1.0)]),
        )
        event = FleetEvent(1, 0.5, "deploy", {"replica": "r0"}, shard=2)
        payload = perfetto_trace([trace], [event])
        assert payload["displayTimeUnit"] == "ms"
        rows = payload["traceEvents"]
        complete = [r for r in rows if r["ph"] == "X"]
        instants = [r for r in rows if r["ph"] == "i"]
        meta = [r for r in rows if r["ph"] == "M"]
        assert len(complete) == 2
        assert len(instants) == 1
        assert [m["args"]["name"] for m in meta] == ["shard 2"]
        decode = next(r for r in complete if r["name"] == "decode")
        assert decode["ts"] == pytest.approx(1e6)  # seconds -> µs
        assert decode["dur"] == pytest.approx(1e6)
        assert decode["pid"] == 2
        assert json.dumps(payload)  # JSON-serialisable end to end


# ----------------------------------------------------------------------
# Auditor wiring
# ----------------------------------------------------------------------
class TestAuditorWiring:
    class _Sim:
        def __init__(self, tracer):
            self.tracer = tracer

    class _System:
        def __init__(self, tracer):
            self.sim = TestAuditorWiring._Sim(tracer)

    def test_untraced_system_is_exempt(self):
        auditor = InvariantAuditor(self._System(None))
        assert auditor._check_span_conservation() == []

    def test_tampered_trace_is_a_violation(self):
        tracer = SpanTracer()
        tracer.finalized.append(
            make_trace(spans=[Span("decode", "decode", 0.0, 1.5)])
        )
        auditor = InvariantAuditor(self._System(tracer))
        (violation,) = auditor._check_span_conservation()
        assert violation.invariant == "span-conservation"


# ----------------------------------------------------------------------
# Traced scenario integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_report():
    return run_scenario_case(ScenarioCase(MINI, "FlexPipe", 0, trace=True))


class TestTracedScenario:
    def test_run_is_clean(self, traced_report):
        assert traced_report.violations == []

    def test_every_completion_is_traced(self, traced_report):
        assert len(traced_report.traces) == traced_report.completed
        assert traced_report.completed > 0

    def test_spans_tile_every_interval(self, traced_report):
        assert conservation_violations(traced_report.traces) == []

    def test_tail_fully_attributed(self, traced_report):
        for metric in ("ttft", "latency"):
            report = attribute_tail(traced_report.traces, metric=metric)
            assert report.attributed_fraction >= 0.95
            assert report.attributed_fraction == pytest.approx(1.0)

    def test_flight_recorder_saw_the_control_plane(self, traced_report):
        kinds = {e.kind for e in traced_report.fleet_events}
        assert "replica_activated" in kinds
        assert "teardown" in kinds
        assert "refactor_started" in kinds

    def test_refactor_event_pairs_with_outcome(self, traced_report):
        events = traced_report.fleet_events
        started = sum(1 for e in events if e.kind == "refactor_started")
        resolved = sum(
            1
            for e in events
            if e.kind in ("refactor_switched", "refactor_aborted")
        )
        assert started == resolved
        assert started >= 1

    def test_tracing_off_report_is_identical(self, traced_report):
        off = run_scenario_case(ScenarioCase(MINI, "FlexPipe", 0, trace=False))
        assert off.traces == [] and off.fleet_events == []

        def strip(report):
            payload = dataclasses.asdict(report)
            payload.pop("traces")
            payload.pop("fleet_events")
            return json.dumps(payload, sort_keys=True, default=repr)

        assert strip(off) == strip(traced_report)

    def test_untraced_requests_carry_no_trace(self):
        driver = ScenarioDriver(ScenarioCase(MINI, "FlexPipe", 0))
        driver.run()
        assert driver.tracer is None
        assert all(
            r.trace is None for r in driver.system.metrics.records
        )


class TestShardedTracing:
    @pytest.fixture(scope="class")
    def sharded(self):
        spec = ScenarioSpec(
            name="obs-shard",
            cluster="paper",
            settle=30.0,
            drain=10.0,
            models=(
                ModelScript(
                    "LLAMA2-7B",
                    segments=(ArrivalSegment(duration=10.0, qps=8.0),),
                ),
                ModelScript(
                    "WHISPER-9B",
                    segments=(ArrivalSegment(duration=10.0, qps=2.0),),
                ),
            ),
        )
        return run_scenario_case(
            ScenarioCase(spec, "FlexPipe", 0, shards=2, trace=True)
        )

    def test_merge_keeps_provenance(self, sharded):
        assert sharded.shards == 2
        assert sharded.traces
        assert {t.shard for t in sharded.traces} == {0, 1}
        assert {e.shard for e in sharded.fleet_events} <= {0, 1}

    def test_merged_spans_still_tile(self, sharded):
        assert conservation_violations(sharded.traces) == []

    def test_merge_order_is_stable(self, sharded):
        arrivals = [(t.arrival, t.rid) for t in sharded.traces]
        assert arrivals == sorted(arrivals)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCLI:
    def test_run_args(self):
        args = build_parser().parse_args(
            ["trace", "run", "coldstart-economy", "--quick", "--shards", "2"]
        )
        assert args.trace_command == "run"
        assert args.scenario == "coldstart-economy"
        assert args.quick and args.shards == 2

    def test_bare_scenario_sugar_routes_to_run(self, capsys):
        # `repro trace <unknown>` parses as `trace run <unknown>` and
        # fails scenario resolution (exit 2) instead of argparse's usage
        # error — proof the sugar rewrite engaged.
        assert main(["trace", "no-such-scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_sugar_preserves_literal_subcommands(self):
        args = build_parser().parse_args(["trace", "stats", "in.csv"])
        assert args.trace_command == "stats"

    def test_traced_scenario_cli_end_to_end(self, tmp_path, capsys, monkeypatch):
        from repro.scenarios import SCENARIOS

        monkeypatch.setitem(SCENARIOS, "obs-mini", MINI)
        out = tmp_path / "trace.json"
        code = main(["trace", "obs-mini", "--json", str(out)])
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "TTFT tail" in captured.out
        assert "trace gates held" in captured.out
        payload = json.loads(out.read_text())
        assert payload["traceEvents"]
