"""Tests for fair-share links and the §8 data-mover hierarchy."""

from __future__ import annotations

import pytest

from repro.simulation.engine import Simulator
from repro.transfer.datamover import DataMover, TransferCosts, TransferMethod
from repro.transfer.links import GB, FairShareLink, LinkSpec


def make_link(sim, bandwidth=1.0 * GB, latency=0.0):
    return FairShareLink(sim, LinkSpec("test", bandwidth, latency))


class TestFairShareLink:
    def test_single_transfer_takes_serial_time(self, sim):
        link = make_link(sim)
        done = []
        link.transfer(2.0 * GB, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_latency_added_once(self, sim):
        link = make_link(sim, latency=0.5)
        done = []
        link.transfer(1.0 * GB, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(1.5)]

    def test_two_transfers_share_bandwidth(self, sim):
        link = make_link(sim)
        done = []
        link.transfer(1.0 * GB, lambda: done.append(("a", sim.now)))
        link.transfer(1.0 * GB, lambda: done.append(("b", sim.now)))
        sim.run()
        # Both need 1s alone; sharing doubles both to 2s.
        assert done[0][1] == pytest.approx(2.0)
        assert done[1][1] == pytest.approx(2.0)

    def test_contention_is_monotone(self, sim):
        """A transfer under contention never finishes before one alone."""
        lone_sim = Simulator()
        lone = make_link(lone_sim)
        lone_done = []
        lone.transfer(4.0 * GB, lambda: lone_done.append(lone_sim.now))
        lone_sim.run()

        link = make_link(sim)
        busy_done = []
        link.transfer(4.0 * GB, lambda: busy_done.append(sim.now))
        link.transfer(4.0 * GB, lambda: None)
        sim.run()
        assert busy_done[0] >= lone_done[0]

    def test_late_joiner_slows_in_flight_transfer(self, sim):
        link = make_link(sim)
        done = {}
        link.transfer(2.0 * GB, lambda: done.setdefault("first", sim.now))
        sim.schedule(1.0, link.transfer, 2.0 * GB, lambda: done.setdefault("second", sim.now))
        sim.run()
        # First moved 1 GB alone, then shares: remaining 1 GB at 0.5 GB/s -> t=3.
        assert done["first"] == pytest.approx(3.0)

    def test_per_stream_rate_cap_enforced(self, sim):
        link = make_link(sim, bandwidth=10.0 * GB)
        done = []
        link.transfer(1.0 * GB, lambda: done.append(sim.now), max_rate=0.5 * GB)
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_waterfill_redistributes_capped_leftover(self, sim):
        link = make_link(sim, bandwidth=2.0 * GB)
        done = {}
        # Capped stream uses 0.5; uncapped stream should get the rest (1.5).
        link.transfer(1.0 * GB, lambda: done.setdefault("capped", sim.now), max_rate=0.5 * GB)
        link.transfer(3.0 * GB, lambda: done.setdefault("open", sim.now))
        sim.run()
        assert done["capped"] == pytest.approx(2.0)
        assert done["open"] == pytest.approx(2.0, rel=0.05)

    def test_zero_byte_transfer_pays_latency_only(self, sim):
        link = make_link(sim, latency=0.25)
        done = []
        link.transfer(0.0, lambda: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(0.25)]

    def test_active_count_tracks_in_flight(self, sim):
        link = make_link(sim)
        link.transfer(1.0 * GB)
        link.transfer(1.0 * GB)
        assert link.active_count == 2
        sim.run()
        assert link.active_count == 0
        assert link.transfers_completed == 2

    def test_estimate_time_reflects_contention(self, sim):
        link = make_link(sim)
        empty = link.estimate_time(1.0 * GB)
        link.transfer(8.0 * GB)
        assert link.estimate_time(1.0 * GB) > empty

    def test_invalid_max_rate_rejected(self, sim):
        link = make_link(sim)
        with pytest.raises(ValueError):
            link.transfer(1.0, max_rate=0.0)

    def test_invalid_bandwidth_rejected(self, sim):
        with pytest.raises(ValueError):
            FairShareLink(sim, LinkSpec("bad", 0.0))

    def test_serial_time_helper(self):
        spec = LinkSpec("s", 2.0 * GB, latency=0.1)
        assert spec.serial_time(4.0 * GB) == pytest.approx(2.1)
        with pytest.raises(ValueError):
            spec.serial_time(-1.0)

    def test_many_transfers_all_complete(self, sim):
        link = make_link(sim)
        done = []
        for _ in range(20):
            link.transfer(0.1 * GB, lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 20


class TestDataMover:
    def test_prefers_local_on_same_server(self):
        plan = DataMover().plan(GB, same_server=True, src_rdma=False, dst_rdma=False)
        assert plan.method is TransferMethod.LOCAL

    def test_prefers_rdma_when_both_sides_support_it(self):
        plan = DataMover().plan(GB, same_server=False, src_rdma=True, dst_rdma=True)
        assert plan.method is TransferMethod.RDMA

    def test_falls_back_to_sendfile_without_rdma(self):
        for src, dst in [(True, False), (False, True), (False, False)]:
            plan = DataMover().plan(GB, same_server=False, src_rdma=src, dst_rdma=dst)
            assert plan.method is TransferMethod.SENDFILE

    def test_nccl_setup_dominates_small_transfers(self):
        """§8: NCCL connection establishment costs seconds — the reason
        FlexPipe avoids it for KV migration."""
        mover = DataMover()
        rdma = mover.plan(64 * 2**20, same_server=False, src_rdma=True, dst_rdma=True)
        nccl = mover.plan(
            64 * 2**20, same_server=False, src_rdma=True, dst_rdma=True, force_nccl=True
        )
        assert nccl.duration > 10 * rdma.duration

    def test_duration_scales_with_bytes(self):
        mover = DataMover()
        small = mover.plan(GB, same_server=False, src_rdma=True, dst_rdma=True)
        large = mover.plan(10 * GB, same_server=False, src_rdma=True, dst_rdma=True)
        assert large.duration > small.duration

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DataMover().plan(-1.0, same_server=True, src_rdma=False, dst_rdma=False)

    def test_custom_costs_respected(self):
        costs = TransferCosts(rdma_setup=1.0)
        plan = DataMover(costs).plan(0.0, same_server=False, src_rdma=True, dst_rdma=True)
        assert plan.setup_time == 1.0
