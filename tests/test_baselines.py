"""Tests for the baseline systems' distinguishing policies."""

from __future__ import annotations


from repro.baselines import (
    AlpaServeSystem,
    MuxServeSystem,
    ServerlessLLMSystem,
    TetrisSystem,
)
from repro.models.zoo import LLAMA2_7B, OPT_66B


class TestAlpaServe:
    def test_offline_granularity_tracks_historical_cv(self, ctx):
        calm = AlpaServeSystem(ctx, [LLAMA2_7B], historical_cv=0.25)
        bursty = AlpaServeSystem(ctx, [LLAMA2_7B], historical_cv=8.0)
        k_calm = calm.plans[LLAMA2_7B.name].n_stages
        k_bursty = bursty.plans[LLAMA2_7B.name].n_stages
        assert k_bursty > k_calm
        calm.shutdown()
        bursty.shutdown()

    def test_is_fully_static(self, ctx):
        system = AlpaServeSystem(ctx, [LLAMA2_7B])
        assert system.autoscalers == {}
        system.shutdown()


class TestMuxServe:
    def test_prefers_colocation(self, ctx):
        system = MuxServeSystem(ctx, [LLAMA2_7B])
        assert system.prefer_colocation
        assert system.autoscalers == {}
        system.shutdown()

    def test_scorer_rewards_shared_gpus(self, ctx):
        system = MuxServeSystem(ctx, [LLAMA2_7B])
        scorer = system._scorer(LLAMA2_7B.name)
        shared, empty = ctx.cluster.gpus[0], ctx.cluster.gpus[1]
        shared.reserve("x", 1.0, model="other")
        assert scorer(shared) > scorer(empty)
        system.shutdown()


class TestServerlessLLM:
    def test_reactive_with_fast_loading(self, ctx):
        system = ServerlessLLMSystem(ctx, [LLAMA2_7B])
        assert LLAMA2_7B.name in system.autoscalers
        assert system.factory.loading_speedup == 3.0
        # Whole-pipeline scale-ups pay full distributed-runtime init.
        assert system.factory.startup_overhead == 12.0
        system.shutdown()

    def test_fixed_granularity(self, ctx):
        system = ServerlessLLMSystem(ctx, [OPT_66B], n_stages=4)
        assert system.plans[OPT_66B.name].n_stages == 4
        system.shutdown()


class TestTetris:
    def test_coarsest_feasible_granularity(self, ctx):
        system = TetrisSystem(ctx, [LLAMA2_7B, OPT_66B])
        # LLAMA fits a single GPU; OPT-66B (120 GiB) needs at least two.
        assert system.plans[LLAMA2_7B.name].n_stages == 1
        assert system.plans[OPT_66B.name].n_stages == 2
        system.shutdown()

    def test_modest_batch_and_slow_scaling(self, ctx):
        system = TetrisSystem(ctx, [LLAMA2_7B])
        assert system.batch_cap == 16
        scaler = system.autoscalers[LLAMA2_7B.name]
        assert scaler.config.interval >= 2.0
        assert scaler.config.scale_out_cooldown >= 5.0
        system.shutdown()


class TestSnapBehaviour:
    def test_requested_stage_count_snaps_to_rung(self, ctx):
        system = ServerlessLLMSystem(ctx, [LLAMA2_7B], n_stages=5)
        assert system.plans[LLAMA2_7B.name].n_stages == 8  # next rung up
        system.shutdown()
