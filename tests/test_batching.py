"""Tests for the dynamic batcher's accumulation-window policy."""

from __future__ import annotations

import pytest

from repro.pipeline.batching import BatcherConfig, DynamicBatcher
from repro.simulation.randomness import RandomStreams
from repro.workloads.requests import RequestSampler


@pytest.fixture
def sampler():
    return RequestSampler("m", RandomStreams(0).stream("r"))


def make_batcher(sim, max_batch=8, max_wait=0.1, dispatchable=True):
    batches = []
    state = {"ok": dispatchable}
    batcher = DynamicBatcher(
        sim,
        BatcherConfig(max_batch=max_batch, max_wait=max_wait),
        can_dispatch=lambda: state["ok"],
        dispatch=batches.append,
    )
    return batcher, batches, state


class TestDynamicBatcher:
    def test_waits_for_window_before_dispatch(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_wait=0.1)
        batcher.enqueue(sampler.sample(0.0))
        sim.run(until=0.05)
        assert batches == []  # window not elapsed
        sim.run(until=0.2)
        assert len(batches) == 1

    def test_full_batch_dispatches_immediately(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=4, max_wait=10.0)
        for _ in range(4):
            batcher.enqueue(sampler.sample(0.0))
        assert len(batches) == 1
        assert len(batches[0]) == 4

    def test_accumulates_within_window(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=16, max_wait=0.1)
        for i in range(5):
            sim.schedule(i * 0.01, lambda: batcher.enqueue(sampler.sample(sim.now)))
        sim.run(until=0.5)
        assert len(batches) == 1
        assert len(batches[0]) == 5

    def test_respects_max_batch_on_overflow(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=3, max_wait=0.1)
        for _ in range(7):
            batcher.enqueue(sampler.sample(0.0))
        sim.run(until=1.0)
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_blocked_entry_stage_defers_dispatch(self, sim, sampler):
        batcher, batches, state = make_batcher(sim, max_wait=0.05, dispatchable=False)
        batcher.enqueue(sampler.sample(0.0))
        sim.run(until=0.2)
        assert batches == []
        state["ok"] = True
        batcher.pump()
        assert len(batches) == 1

    def test_pump_holds_until_window_ripe(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_wait=0.5)
        batcher.enqueue(sampler.sample(0.0))
        batcher.pump()  # window not elapsed, queue below max
        assert batches == []

    def test_flush_drains_without_dispatch(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim)
        batcher.enqueue(sampler.sample(0.0))
        drained = batcher.flush()
        sim.run(until=1.0)
        assert len(drained) == 1
        assert batches == []
        assert len(batcher) == 0

    def test_mean_batch_size_statistic(self, sim, sampler):
        batcher, _, _ = make_batcher(sim, max_batch=4, max_wait=0.01)
        assert batcher.mean_batch_size == 0.0
        for _ in range(8):
            batcher.enqueue(sampler.sample(0.0))
        sim.run(until=1.0)
        assert batcher.mean_batch_size == pytest.approx(4.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BatcherConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_wait=-1.0)

    def test_timer_rearms_for_followup_batches(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=100, max_wait=0.1)
        batcher.enqueue(sampler.sample(0.0))
        sim.schedule(0.3, lambda: batcher.enqueue(sampler.sample(sim.now)))
        sim.run(until=1.0)
        assert len(batches) == 2
