"""Tests for the dynamic batcher's accumulation-window policy and the
class-priority batch-formation variant."""

from __future__ import annotations

import pytest

from repro.pipeline.batching import BatcherConfig, DynamicBatcher, PriorityBatcher
from repro.qos.classes import request_priority
from repro.simulation.randomness import RandomStreams
from repro.workloads.requests import Request, RequestSampler


@pytest.fixture
def sampler():
    return RequestSampler("m", RandomStreams(0).stream("r"))


def make_batcher(sim, max_batch=8, max_wait=0.1, dispatchable=True):
    batches = []
    state = {"ok": dispatchable}
    batcher = DynamicBatcher(
        sim,
        BatcherConfig(max_batch=max_batch, max_wait=max_wait),
        can_dispatch=lambda: state["ok"],
        dispatch=batches.append,
    )
    return batcher, batches, state


class TestDynamicBatcher:
    def test_waits_for_window_before_dispatch(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_wait=0.1)
        batcher.enqueue(sampler.sample(0.0))
        sim.run(until=0.05)
        assert batches == []  # window not elapsed
        sim.run(until=0.2)
        assert len(batches) == 1

    def test_full_batch_dispatches_immediately(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=4, max_wait=10.0)
        for _ in range(4):
            batcher.enqueue(sampler.sample(0.0))
        assert len(batches) == 1
        assert len(batches[0]) == 4

    def test_accumulates_within_window(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=16, max_wait=0.1)
        for i in range(5):
            sim.schedule(i * 0.01, lambda: batcher.enqueue(sampler.sample(sim.now)))
        sim.run(until=0.5)
        assert len(batches) == 1
        assert len(batches[0]) == 5

    def test_respects_max_batch_on_overflow(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=3, max_wait=0.1)
        for _ in range(7):
            batcher.enqueue(sampler.sample(0.0))
        sim.run(until=1.0)
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_blocked_entry_stage_defers_dispatch(self, sim, sampler):
        batcher, batches, state = make_batcher(sim, max_wait=0.05, dispatchable=False)
        batcher.enqueue(sampler.sample(0.0))
        sim.run(until=0.2)
        assert batches == []
        state["ok"] = True
        batcher.pump()
        assert len(batches) == 1

    def test_pump_holds_until_window_ripe(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_wait=0.5)
        batcher.enqueue(sampler.sample(0.0))
        batcher.pump()  # window not elapsed, queue below max
        assert batches == []

    def test_flush_drains_without_dispatch(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim)
        batcher.enqueue(sampler.sample(0.0))
        drained = batcher.flush()
        sim.run(until=1.0)
        assert len(drained) == 1
        assert batches == []
        assert len(batcher) == 0

    def test_mean_batch_size_statistic(self, sim, sampler):
        batcher, _, _ = make_batcher(sim, max_batch=4, max_wait=0.01)
        assert batcher.mean_batch_size == 0.0
        for _ in range(8):
            batcher.enqueue(sampler.sample(0.0))
        sim.run(until=1.0)
        assert batcher.mean_batch_size == pytest.approx(4.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BatcherConfig(max_batch=0)
        with pytest.raises(ValueError):
            BatcherConfig(max_wait=-1.0)

    def test_timer_rearms_for_followup_batches(self, sim, sampler):
        batcher, batches, _ = make_batcher(sim, max_batch=100, max_wait=0.1)
        batcher.enqueue(sampler.sample(0.0))
        sim.schedule(0.3, lambda: batcher.enqueue(sampler.sample(sim.now)))
        sim.run(until=1.0)
        assert len(batches) == 2


# ----------------------------------------------------------------------
# Class-priority batch formation (the QoS variant)
# ----------------------------------------------------------------------
def classed_request(rid, slo_class=None):
    return Request(
        rid=rid,
        model="m",
        arrival_time=0.0,
        prompt_tokens=100,
        output_tokens=10,
        slo_latency=5.0,
        slo_class=slo_class,
    )


def make_priority_batcher(
    sim, max_batch=8, max_wait=0.1, dispatchable=True, aging=None
):
    batches = []
    state = {"ok": dispatchable}
    batcher = PriorityBatcher(
        sim,
        BatcherConfig(max_batch=max_batch, max_wait=max_wait),
        can_dispatch=lambda: state["ok"],
        dispatch=batches.append,
        priority_of=request_priority,
        aging=aging,
    )
    return batcher, batches, state


class TestPriorityBatcher:
    def test_batch_forms_in_class_priority_order(self, sim):
        """A partial batch pulls interactive work first: the last slots of
        a full batch drop the least urgent class, not the newest arrival."""
        batcher, batches, _ = make_priority_batcher(sim, max_batch=3, max_wait=0.1)
        batcher.enqueue(classed_request(0, "batch"))
        batcher.enqueue(classed_request(1, "batch"))
        batcher.enqueue(classed_request(2, "interactive"))
        sim.run(until=1.0)
        assert [r.rid for r in batches[0]] == [2, 0, 1]

    def test_fifo_within_a_class(self, sim):
        batcher, batches, _ = make_priority_batcher(sim, max_batch=8, max_wait=0.05)
        for i in range(4):
            batcher.enqueue(classed_request(i, "standard"))
        sim.run(until=1.0)
        assert [r.rid for r in batches[0]] == [0, 1, 2, 3]

    def test_single_class_matches_fifo_batcher(self, sim, sampler):
        """On an unclassed tenant the priority batcher is a no-op: batch
        contents and boundaries match the FIFO batcher exactly."""
        fifo, fifo_batches, _ = make_batcher(sim, max_batch=3, max_wait=0.1)
        prio, prio_batches, _ = make_priority_batcher(sim, max_batch=3, max_wait=0.1)
        requests = [sampler.sample(0.0) for _ in range(7)]
        for request in requests:
            fifo.enqueue(request)
            prio.enqueue(request)
        sim.run(until=1.0)
        assert [[r.rid for r in b] for b in prio_batches] == [
            [r.rid for r in b] for b in fifo_batches
        ]

    def test_overflow_defers_the_lowest_class(self, sim):
        """When the backlog exceeds one batch, the overflow left behind is
        the least urgent class — regardless of arrival order."""
        batcher, batches, state = make_priority_batcher(
            sim, max_batch=2, max_wait=0.05, dispatchable=False
        )
        batcher.enqueue(classed_request(0, "best_effort"))
        batcher.enqueue(classed_request(1, "interactive"))
        batcher.enqueue(classed_request(2, "standard"))
        state["ok"] = True
        sim.run(until=1.0)
        assert [r.rid for r in batches[0]] == [1, 2]
        assert [r.rid for r in batches[1]] == [0]

    def test_aging_promotes_a_starving_batch_request(self, sim):
        batcher, batches, _ = make_priority_batcher(
            sim, max_batch=1, max_wait=0.1, dispatchable=False, aging=5.0
        )
        batcher.enqueue(classed_request(0, "batch"))
        sim.run(until=11.0)  # batch waited 11 s -> effective rank 0
        batcher.enqueue(classed_request(1, "interactive"))
        assert [r.rid for r in batcher.flush()] == [0, 1]

    def test_flush_returns_everything_and_empties(self, sim):
        batcher, batches, _ = make_priority_batcher(
            sim, max_batch=8, max_wait=10.0
        )
        for i, cls in enumerate(("batch", "interactive", None)):
            batcher.enqueue(classed_request(i, cls))
        drained = batcher.flush()
        assert {r.rid for r in drained} == {0, 1, 2}
        assert len(batcher) == 0
        sim.run(until=1.0)
        assert batches == []

    def test_window_keyed_to_globally_oldest_request(self, sim):
        """The max_wait window follows the oldest *enqueue*, even when a
        later, more urgent class sits at the front of the pop order."""
        batcher, batches, _ = make_priority_batcher(sim, max_batch=8, max_wait=0.2)
        batcher.enqueue(classed_request(0, "batch"))
        sim.schedule(0.15, lambda: batcher.enqueue(classed_request(1, "interactive")))
        sim.run(until=0.25)  # 0.2 s after the *batch* request arrived
        assert len(batches) == 1
        assert [r.rid for r in batches[0]] == [1, 0]

    def test_bad_aging_rejected(self, sim):
        with pytest.raises(ValueError, match="aging"):
            make_priority_batcher(sim, aging=0.0)


class TestUsePriorityBatcher:
    """Mid-run migration of a replica's batcher (ServingSystem.enable_qos)."""

    def _replica(self, ctx, llama_profile):
        from repro.partitioning.ladder import GranularityLadder
        from repro.pipeline.replica import PipelineReplica

        ladder = GranularityLadder(llama_profile, stage_counts=(2,))
        plan = ladder.plan(2)
        mems = plan.memory_per_stage(4, llama_profile.spec.kv_bytes_per_request)
        reservations = ctx.allocator.allocate_stages("LLAMA2-7B", mems)
        return PipelineReplica(
            ctx.sim,
            llama_profile,
            plan,
            reservations,
            batcher_config=BatcherConfig(max_batch=4, max_wait=0.5),
            on_request_complete=lambda r: None,
        )

    def test_queue_and_counters_survive_the_swap(self, ctx, llama_profile):
        replica = self._replica(ctx, llama_profile)
        replica.activate()
        for i, cls in enumerate(("batch", "interactive", "batch")):
            replica.submit(classed_request(i, cls))
        old = replica.batcher
        replica.use_priority_batcher(request_priority, aging=10.0)
        assert isinstance(replica.batcher, PriorityBatcher)
        assert replica.batcher is not old
        assert len(replica.batcher) == 3
        assert replica.batcher.batches_formed == old.batches_formed
        # Enqueue times migrated: the oldest request still anchors the
        # accumulation window.
        assert replica.batcher._oldest_time() == 0.0
        # The migrated queue still serves: nothing lost across the swap.
        ctx.sim.run(until=5.0)
        assert replica.completed_requests == 3

    def test_swap_is_idempotent(self, ctx, llama_profile):
        replica = self._replica(ctx, llama_profile)
        replica.use_priority_batcher(request_priority)
        swapped = replica.batcher
        replica.use_priority_batcher(request_priority)
        assert replica.batcher is swapped
