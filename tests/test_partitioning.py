"""Tests for the Eq. 2 partitioner, granularity ladder, and Eq. 3 scaling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.costs import CostModel
from repro.models.profiler import ModelProfile
from repro.models.transformer import build_transformer
from repro.models.zoo import BERT_21B, LLAMA2_7B, OPT_66B, WHISPER_9B
from repro.partitioning.batch_scaling import activation_bytes, fit_alpha
from repro.partitioning.ladder import GranularityLadder
from repro.partitioning.partitioner import (
    InfeasiblePartition,
    Partitioner,
    PartitionerConfig,
)
from repro.partitioning.validate import validate_ladder, validate_plan
from repro.transfer.links import GB


@pytest.fixture(scope="module")
def llama_partitioner(llama_profile):
    return Partitioner(llama_profile)


class TestPartitioner:
    @pytest.mark.parametrize("n_stages", [1, 2, 3, 4, 8, 16])
    def test_plans_satisfy_structural_invariants(self, llama_profile, llama_partitioner, n_stages):
        plan = llama_partitioner.plan(n_stages)
        validate_plan(plan, llama_profile.graph, CostModel().config.gpu_memory)
        assert plan.n_stages == n_stages

    def test_single_stage_infeasible_for_large_model(self, opt_profile):
        partitioner = Partitioner(opt_profile)
        with pytest.raises(InfeasiblePartition):
            partitioner.plan(1)  # 120 GiB cannot fit one 80 GiB GPU

    def test_two_stages_feasible_for_opt(self, opt_profile):
        plan = Partitioner(opt_profile).plan(2)
        assert max(s.param_bytes for s in plan.stages) <= 80 * GB

    def test_stages_are_balanced(self, llama_partitioner):
        plan = llama_partitioner.plan(8)
        sizes = [s.param_bytes for s in plan.stages]
        assert max(sizes) <= 2.0 * (sum(sizes) / len(sizes))

    def test_too_many_stages_rejected(self, llama_profile):
        partitioner = Partitioner(llama_profile)
        with pytest.raises((InfeasiblePartition, ValueError)):
            partitioner.plan(10_000)

    def test_zero_stages_rejected(self, llama_partitioner):
        with pytest.raises(ValueError):
            llama_partitioner.plan(0)

    def test_boundary_quality_preferred(self, llama_profile):
        """With the regulariser active, most cuts land on layer boundaries."""
        plan = Partitioner(llama_profile).plan(8)
        qualities = [llama_profile.graph.boundary_quality(c - 1) for c in plan.cuts]
        assert sum(1 for q in qualities if q >= 0.5) == len(qualities)

    def test_memory_constraint_tighter_config(self, llama_profile):
        config = PartitionerConfig(gpu_memory=2 * GB)
        partitioner = Partitioner(llama_profile, config)
        plan = partitioner.plan(8)
        assert max(s.param_bytes for s in plan.stages) <= 2 * GB

    def test_plan_max_batch_is_min_over_stages(self, llama_partitioner):
        plan = llama_partitioner.plan(4)
        assert plan.max_batch == min(s.max_batch for s in plan.stages)

    def test_memory_per_stage_includes_kv(self, llama_profile, llama_partitioner):
        plan = llama_partitioner.plan(4)
        with_kv = plan.memory_per_stage(64, llama_profile.spec.kv_bytes_per_request)
        without = plan.memory_per_stage(64, 0.0)
        assert all(a >= b for a, b in zip(with_kv, without))
        assert sum(without) == pytest.approx(llama_profile.graph.total_param_bytes)


class TestLadder:
    @pytest.mark.parametrize("spec", [OPT_66B, LLAMA2_7B, BERT_21B, WHISPER_9B])
    def test_ladders_are_nested_for_all_models(self, spec):
        profile = ModelProfile(spec=spec, graph=build_transformer(spec), cost_model=CostModel())
        ladder = GranularityLadder(profile)
        validate_ladder(ladder)
        for count in ladder.stage_counts:
            validate_plan(ladder.plan(count), profile.graph, CostModel().config.gpu_memory)

    def test_opt_excludes_infeasible_single_stage(self, opt_profile):
        ladder = GranularityLadder(opt_profile, stage_counts=(1, 2, 4, 8, 16, 32))
        assert 1 not in ladder.stage_counts
        assert 2 in ladder.stage_counts

    def test_llama_includes_single_stage(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(1, 2, 4))
        assert ladder.coarsest == 1

    def test_unknown_rung_raises_with_options(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        with pytest.raises(KeyError, match="available"):
            ladder.rung(5)

    def test_groups_tile_fine_stages(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4, 8, 16))
        for count in ladder.stage_counts:
            groups = ladder.rung(count).groups
            covered = []
            for lo, hi in groups:
                covered.extend(range(lo, hi))
            assert covered == list(range(ladder.fine_plan.n_stages))

    def test_coarse_plans_have_fewer_cuts(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4, 8))
        assert set(ladder.plan(2).cuts) <= set(ladder.plan(8).cuts) | {ladder.plan(2).cuts[-1] if ladder.plan(2).cuts else 0} or set(ladder.plan(2).cuts) <= set(ladder.fine_plan.cuts)

    def test_finest_rung_is_the_fine_plan(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4, 8))
        assert ladder.rung(ladder.finest).plan is ladder.fine_plan


class TestBatchScaling:
    def test_eq3_at_base_batch_is_identity(self):
        assert activation_bytes(1000.0, 128) == pytest.approx(1000.0)

    def test_eq3_grows_logarithmically(self):
        grown = activation_bytes(1000.0, 1024)
        assert 1000.0 < grown < 8 * 1000.0  # far below linear scaling

    def test_eq3_floor_for_tiny_batches(self):
        assert activation_bytes(1000.0, 1) >= 0.25 * 1000.0

    def test_eq3_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            activation_bytes(-1.0, 4)
        with pytest.raises(ValueError):
            activation_bytes(1.0, 0)

    def test_fit_alpha_recovers_known_coefficient(self):
        import math

        alpha_true = 0.2
        batches = [16, 32, 64, 128, 256, 512, 1024]
        observed = [1000.0 * (1 + alpha_true * math.log(b / 128)) for b in batches]
        fitted = fit_alpha(batches, observed)
        assert fitted == pytest.approx(alpha_true, rel=0.05)

    def test_fit_alpha_requires_two_points(self):
        with pytest.raises(ValueError):
            fit_alpha([128], [1000.0])

    def test_fit_alpha_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_alpha([1, 2], [1.0])


class TestPartitionProperties:
    """Property-based invariants over the partition search space."""

    @given(n_stages=st.integers(min_value=1, max_value=16))
    @settings(max_examples=16, deadline=None)
    def test_any_feasible_stage_count_partitions_exactly(self, n_stages):
        profile = _LLAMA_PROFILE
        plan = Partitioner(profile).plan(n_stages)
        validate_plan(plan, profile.graph, CostModel().config.gpu_memory)

    @given(
        batch=st.integers(min_value=1, max_value=2048),
        base=st.floats(min_value=1.0, max_value=1e9),
    )
    @settings(max_examples=50, deadline=None)
    def test_eq3_always_positive_and_bounded(self, batch, base):
        value = activation_bytes(base, batch)
        assert 0 < value <= base * (1 + 0.18 * 11)  # ln(2048/128) < 2.8


_LLAMA_PROFILE = ModelProfile(
    spec=LLAMA2_7B, graph=build_transformer(LLAMA2_7B), cost_model=CostModel()
)
