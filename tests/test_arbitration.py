"""Class-aware GPU arbitration: priority preempt-or-wait, per-tenant
share caps, and the factory/auditor integration around both."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.cluster.allocator import AllocationError, PendingClaim, PreemptionRecord
from repro.core.deployment import ReplicaFactory
from repro.metrics.collector import MetricsCollector
from repro.models.zoo import get_model
from repro.pipeline.replica import ReplicaState
from repro.pipeline.router import ModelRouter
from repro.validation.auditor import InvariantAuditor

GB = 2**30

# Strict-priority ranks used throughout: "it" is interactive-grade (0),
# "std" standard (1), "batch" batch-grade (2).
PRIORITIES = {"it": 0, "std": 1, "batch": 2, "LLAMA2-7B": 0, "BERT-21B": 2}


def enable(allocator, share_caps=None):
    allocator.enable_arbitration(PRIORITIES.__getitem__, share_caps=share_caps)


def fill_gpus(allocator, *, leave=(), model="background-fill"):
    """Absorb every free byte, leaving ``leave[i]`` bytes on GPU ``i``."""
    for i, gpu in enumerate(allocator.cluster.gpus):
        slack = leave[i] if i < len(leave) else 0.0
        amount = gpu.free_memory - slack
        if amount > 0:
            allocator.reserve_on(model, gpu, amount)


def claim_for(allocator, model, reservations):
    """Register a pending claim whose cancel releases the reservations —
    the shape ReplicaFactory wires up via replica.drain."""
    return allocator.register_pending_deploy(
        model,
        reservations,
        lambda: [
            allocator.release(r) for r in reservations if not r.released
        ],
    )


# ----------------------------------------------------------------------
# Preempt-or-wait at the allocator
# ----------------------------------------------------------------------
class TestPreemption:
    def test_urgent_class_preempts_lower_class_pending_deploy(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(10 * GB, 10 * GB))
        batch_res = allocator.allocate_stages("batch", [8 * GB, 8 * GB])
        claim = claim_for(allocator, "batch", batch_res)
        # No free fragment is left; the interactive deploy must win the
        # pending batch deploy's slots.
        it_res = allocator.allocate_stages("it", [8 * GB, 8 * GB])
        assert len(it_res) == 2
        assert all(r.released for r in batch_res)
        assert allocator.preempted_deploys == 1
        assert claim.state == "preempted"
        record = allocator.preemptions[0]
        assert record.victim_model == "batch"
        assert record.claimant_model == "it"

    def test_without_arbitration_allocation_just_fails(self, ctx):
        """Pre-existing behaviour: QoS off, a blocked deploy waits."""
        allocator = ctx.allocator
        fill_gpus(allocator, leave=(10 * GB,))
        res = allocator.allocate_stages("batch", [8 * GB])
        allocator.register_pending_deploy(
            "batch", res, lambda: None
        )  # no-op while arbitration is off
        with pytest.raises(AllocationError):
            allocator.allocate_stages("it", [8 * GB])
        assert allocator.preempted_deploys == 0
        assert not res[0].released

    def test_equal_or_higher_priority_never_preempted(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(10 * GB,))
        it_res = allocator.allocate_stages("it", [8 * GB])
        claim = claim_for(allocator, "it", it_res)
        # Same class cannot preempt...
        with pytest.raises(AllocationError):
            allocator.allocate_stages("it", [8 * GB])
        # ...and a lower class certainly cannot.
        with pytest.raises(AllocationError):
            allocator.allocate_stages("batch", [8 * GB])
        assert claim.state == "pending"
        assert allocator.preempted_deploys == 0

    def test_activated_deploy_is_no_longer_preemptible(self, ctx):
        """Never preempt ACTIVE replicas: once a claim resolves, an
        urgent deploy waits instead."""
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(10 * GB,))
        batch_res = allocator.allocate_stages("batch", [8 * GB])
        claim = claim_for(allocator, "batch", batch_res)
        allocator.claim_resolved(claim, activated=True)
        with pytest.raises(AllocationError):
            allocator.allocate_stages("it", [8 * GB])
        assert claim.state == "active"
        assert allocator.preempted_deploys == 0

    def test_least_important_youngest_victim_goes_first(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(10 * GB, 10 * GB))
        std_res = allocator.allocate_stages("std", [8 * GB])
        std_claim = claim_for(allocator, "std", std_res)
        batch_res = allocator.allocate_stages("batch", [8 * GB])
        batch_claim = claim_for(allocator, "batch", batch_res)
        allocator.allocate_stages("it", [8 * GB])
        # One slot sufficed: only the batch-class claim was sacrificed.
        assert batch_claim.state == "preempted"
        assert std_claim.state == "pending"
        assert not std_res[0].released

    def test_hopeless_victims_are_not_preempted(self, ctx):
        """Preempt-or-wait picks *wait* when no victim's memory could
        complete a feasible fragment — no pointless sacrifice."""
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(GB,))
        batch_res = allocator.allocate_stages("batch", [0.5 * GB])
        claim = claim_for(allocator, "batch", batch_res)
        with pytest.raises(AllocationError):
            allocator.allocate_stages("it", [50 * GB])
        assert claim.state == "pending"
        assert allocator.preempted_deploys == 0

    def test_multi_stage_hopeless_victim_not_sacrificed(self, ctx):
        """The dry-run must judge the *whole* placement: a victim whose
        memory covers one stage but cannot unblock a two-stage request is
        left alone (preempting it would destroy its deploy for nothing)."""
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(10 * GB,))
        batch_res = allocator.allocate_stages("batch", [8 * GB])
        claim = claim_for(allocator, "batch", batch_res)
        # Two stages needed, but even with the victim gone only one GPU
        # has room: wait, do not preempt.
        with pytest.raises(AllocationError):
            allocator.allocate_stages("it", [8 * GB, 8 * GB])
        assert claim.state == "pending"
        assert not batch_res[0].released
        assert allocator.preempted_deploys == 0

    def test_jointly_sufficient_victims_both_preempted(self, ctx):
        """Two lower-class claims that only *together* free enough are
        both chosen by the dry-run in one shot."""
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator, leave=(10 * GB, 10 * GB))
        first = allocator.allocate_stages("batch", [8 * GB])
        second = allocator.allocate_stages("batch", [8 * GB])
        claim_a = claim_for(allocator, "batch", first)
        claim_b = claim_for(allocator, "batch", second)
        allocator.allocate_stages("it", [8 * GB, 8 * GB])
        assert claim_a.state == "preempted"
        assert claim_b.state == "preempted"
        assert allocator.preempted_deploys == 2

    def test_failed_preemption_counts_one_failed_request(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        fill_gpus(allocator)
        with pytest.raises(AllocationError):
            allocator.allocate_stages("it", [8 * GB])
        assert allocator.failed_requests == 1


# ----------------------------------------------------------------------
# Per-tenant share caps
# ----------------------------------------------------------------------
class TestShareCaps:
    def test_allocation_exactly_at_cap_succeeds(self, ctx):
        allocator = ctx.allocator
        fleet = allocator.fleet_memory()
        enable(allocator, share_caps={"batch": 0.25})
        allocator.allocate_stages("batch", [fleet * 0.25 / 3] * 3)
        assert allocator.tenant_share("batch") == pytest.approx(0.25)

    def test_one_byte_over_cap_is_refused(self, ctx):
        allocator = ctx.allocator
        enable(allocator, share_caps={"batch": 0.25})
        allocator.allocate_stages(
            "batch", [allocator.fleet_memory() * 0.25 / 3] * 3
        )
        with pytest.raises(AllocationError, match="share cap"):
            allocator.allocate_stages("batch", [1 * GB])
        # The uncapped tenant is untouched by its neighbour's cap.
        assert allocator.allocate_stages("it", [1 * GB])

    def test_release_restores_headroom(self, ctx):
        allocator = ctx.allocator
        enable(allocator, share_caps={"batch": 0.1})
        cap_bytes = 0.1 * allocator.fleet_memory()
        reservations = allocator.allocate_stages("batch", [cap_bytes / 2] * 2)
        assert allocator.share_headroom("batch") == pytest.approx(0.0)
        allocator.release(reservations[0])
        assert allocator.share_headroom("batch") == pytest.approx(cap_bytes / 2)
        allocator.allocate_stages("batch", [cap_bytes / 2])

    def test_peak_share_is_a_high_water_mark(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        reservations = allocator.allocate_stages("batch", [24 * GB])
        peak = allocator.tenant_peak_share("batch")
        allocator.release(reservations[0])
        assert allocator.tenant_share("batch") == 0.0
        assert allocator.tenant_peak_share("batch") == pytest.approx(peak)

    def test_resize_growth_respects_the_cap(self, ctx):
        allocator = ctx.allocator
        enable(allocator, share_caps={"batch": 0.05})
        cap_bytes = 0.05 * allocator.fleet_memory()
        (reservation,) = allocator.allocate_stages("batch", [cap_bytes - 8 * GB])
        with pytest.raises(AllocationError, match="share cap"):
            allocator.resize(reservation, cap_bytes + GB)
        allocator.resize(reservation, cap_bytes)  # exactly at cap: fine
        allocator.resize(reservation, cap_bytes / 2)  # shrink always fine
        assert allocator.tenant_reserved["batch"] == pytest.approx(cap_bytes / 2)

    def test_share_headroom_uncapped_is_infinite(self, ctx):
        import math

        assert math.isinf(ctx.allocator.share_headroom("anything"))

    def test_invalid_cap_rejected(self, ctx):
        with pytest.raises(ValueError, match="share cap"):
            enable(ctx.allocator, share_caps={"batch": 1.5})

    def test_audit_balance_catches_cooked_tenant_books(self, ctx):
        allocator = ctx.allocator
        allocator.allocate_stages("batch", [8 * GB])
        assert allocator.audit_balance() == []
        allocator.tenant_reserved["batch"] += 123 * GB
        problems = allocator.audit_balance()
        assert any("tenant batch" in p for p in problems)


# ----------------------------------------------------------------------
# Through the replica factory (the real preemption cancel path)
# ----------------------------------------------------------------------
class TestFactoryArbitration:
    def _factory(self, ctx):
        llama, bert = get_model("LLAMA2-7B"), get_model("BERT-21B")
        routers = {
            m.name: ModelRouter(ctx.sim, m.name) for m in (llama, bert)
        }
        factory = ReplicaFactory(
            ctx,
            routers=routers,
            metrics=MetricsCollector("test"),
            on_request_complete=lambda r: None,
        )
        profiles = {m.name: ctx.profile(m) for m in (llama, bert)}
        plans = {
            m.name: ctx.ladder(m, (2,)).plan(2) for m in (llama, bert)
        }
        return factory, profiles, plans

    def test_interactive_deploy_preempts_loading_batch_deploy(self, ctx):
        factory, profiles, plans = self._factory(ctx)
        allocator = ctx.allocator
        enable(allocator)
        victim = factory.deploy(
            profiles["BERT-21B"], plans["BERT-21B"], batch_cap=8
        )
        assert victim.state is ReplicaState.LOADING
        assert victim.pending_claim is not None
        held = list(victim.live_reservations())
        fill_gpus(allocator)  # nothing else is feasible now
        winner = factory.deploy(
            profiles["LLAMA2-7B"], plans["LLAMA2-7B"], batch_cap=8
        )
        # The loading batch deploy was drained through the normal teardown
        # path: reservations back exactly once, replica RELEASED, and the
        # interactive deploy holds the freed fragment.
        assert allocator.preempted_deploys == 1
        assert victim.state is ReplicaState.RELEASED
        assert all(r.released for r in held)
        assert victim.anomalies == []
        assert winner.state is ReplicaState.LOADING
        ctx.sim.run_until_idle()
        # The victim never serves; the winner activates normally.
        assert victim.state is ReplicaState.RELEASED
        assert winner.state is ReplicaState.ACTIVE
        assert winner.pending_claim.state == "active"

    def test_claims_resolve_on_normal_activation(self, ctx):
        factory, profiles, plans = self._factory(ctx)
        enable(ctx.allocator)
        replica = factory.deploy(
            profiles["LLAMA2-7B"], plans["LLAMA2-7B"], batch_cap=8
        )
        assert replica.pending_claim.state == "pending"
        ctx.sim.run_until_idle()
        assert replica.pending_claim.state == "active"
        assert ctx.allocator.pending_claims() == []

    def test_share_cap_loses_the_scale_out_race(self, ctx):
        """Cap + scale-out race: the capped tenant at its limit is refused
        the freed fragment; the other tenant takes it."""
        factory, profiles, plans = self._factory(ctx)
        allocator = ctx.allocator
        kv = profiles["BERT-21B"].spec.kv_bytes_per_request
        replica_bytes = sum(plans["BERT-21B"].memory_per_stage(8, kv))
        enable(
            allocator,
            share_caps={
                "BERT-21B": 1.5 * replica_bytes / allocator.fleet_memory()
            },
        )
        factory.deploy(profiles["BERT-21B"], plans["BERT-21B"], batch_cap=8)
        with pytest.raises(AllocationError, match="share cap"):
            factory.deploy(profiles["BERT-21B"], plans["BERT-21B"], batch_cap=8)
        # The race's loser leaves the fragment to the interactive tenant.
        winner = factory.deploy(
            profiles["LLAMA2-7B"], plans["LLAMA2-7B"], batch_cap=8
        )
        assert winner.state is ReplicaState.LOADING


# ----------------------------------------------------------------------
# Auditor detection power for the new invariants
# ----------------------------------------------------------------------
def _stub_auditor(ctx):
    system = SimpleNamespace(ctx=SimpleNamespace(allocator=ctx.allocator))
    return InvariantAuditor(system)


class TestArbitrationInvariants:
    def test_clean_books_audit_clean(self, ctx):
        enable(ctx.allocator, share_caps={"batch": 0.5})
        ctx.allocator.allocate_stages("batch", [8 * GB])
        auditor = _stub_auditor(ctx)
        assert auditor._check_share_caps() == []
        assert auditor._check_preemption_accounting(expect_no_pending=False) == []

    def test_live_over_cap_detected(self, ctx):
        allocator = ctx.allocator
        allocator.allocate_stages("batch", [40 * GB])
        enable(allocator, share_caps={"batch": 0.01})  # cap set below holdings
        violations = _stub_auditor(ctx)._check_share_caps()
        assert any(v.invariant == "share-cap" for v in violations)

    def test_transient_peak_over_cap_detected(self, ctx):
        allocator = ctx.allocator
        enable(allocator, share_caps={"batch": 0.05})
        reservations = allocator.allocate_stages(
            "batch", [0.05 * allocator.fleet_memory()]
        )
        allocator.tenant_peak["batch"] = 0.06 * allocator.fleet_memory()
        allocator.release(reservations[0])
        violations = _stub_auditor(ctx)._check_share_caps()
        assert any("peaked" in v.detail for v in violations)

    def test_leaked_preempted_reservation_detected(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        reservations = allocator.allocate_stages("batch", [8 * GB])
        claim = PendingClaim(0, "batch", 2, list(reservations), lambda: None)
        claim.state = "preempted"
        allocator.preemptions.append(
            PreemptionRecord("batch", 2, "it", 0, claim, tuple(reservations))
        )
        violations = _stub_auditor(ctx)._check_preemption_accounting(
            expect_no_pending=False
        )
        assert any("still holds" in v.detail for v in violations)

    def test_unresolved_pending_claim_detected_at_quiesce(self, ctx):
        allocator = ctx.allocator
        enable(allocator)
        reservations = allocator.allocate_stages("batch", [8 * GB])
        claim_for(allocator, "batch", reservations)
        violations = _stub_auditor(ctx)._check_preemption_accounting(
            expect_no_pending=True
        )
        assert any("never resolved" in v.detail for v in violations)
