"""Tests for GPUs, servers, topology, fragmentation, allocator, HRG."""

from __future__ import annotations

import pytest

from repro.cluster.allocator import AllocationError, GPUAllocator
from repro.cluster.cluster import make_paper_cluster, make_small_cluster
from repro.cluster.fragmentation import FragmentationConfig, FragmentationModel
from repro.cluster.gpu import GPU, GPUSpec
from repro.cluster.hrg import HierarchicalResourceGraph, HRGWeights
from repro.cluster.server import Server
from repro.simulation.randomness import RandomStreams
from repro.transfer.links import GB


class TestGPU:
    def test_reserve_and_release_memory(self):
        gpu = GPU("g0")
        gpu.reserve("a", 10 * GB, model="m")
        assert gpu.free_memory == pytest.approx(70 * GB)
        gpu.release("a", model="m")
        assert gpu.free_memory == pytest.approx(80 * GB)

    def test_overcommit_rejected(self):
        gpu = GPU("g0")
        with pytest.raises(ValueError):
            gpu.reserve("a", 100 * GB)

    def test_duplicate_allocation_id_rejected(self):
        gpu = GPU("g0")
        gpu.reserve("a", GB)
        with pytest.raises(ValueError):
            gpu.reserve("a", GB)

    def test_release_unknown_id_raises(self):
        gpu = GPU("g0")
        with pytest.raises(KeyError):
            gpu.release("nope")

    def test_model_tags_track_hosting(self):
        gpu = GPU("g0")
        gpu.reserve("a", GB, model="opt")
        gpu.reserve("b", GB, model="bert")
        assert gpu.hosts_model("opt") and gpu.hosts_model("bert")
        assert gpu.colocated_model_count == 2
        gpu.release("a", model="opt")
        assert not gpu.hosts_model("opt")

    def test_multiple_stages_same_model_refcounted(self):
        gpu = GPU("g0")
        gpu.reserve("a", GB, model="opt")
        gpu.reserve("b", GB, model="opt")
        gpu.release("a", model="opt")
        assert gpu.hosts_model("opt")  # one stage still resident

    def test_resize_grows_and_shrinks(self):
        gpu = GPU("g0")
        gpu.reserve("a", 10 * GB)
        gpu.resize("a", 20 * GB)
        assert gpu.free_memory == pytest.approx(60 * GB)
        gpu.resize("a", 5 * GB)
        assert gpu.free_memory == pytest.approx(75 * GB)

    def test_resize_overcommit_rejected(self):
        gpu = GPU("g0")
        gpu.reserve("a", 10 * GB)
        with pytest.raises(ValueError):
            gpu.resize("a", 90 * GB)

    def test_occupy_serialises_work(self):
        gpu = GPU("g0")
        end1 = gpu.occupy(now=0.0, duration=2.0)
        end2 = gpu.occupy(now=1.0, duration=2.0)  # arrives while busy
        assert end1 == 2.0
        assert end2 == 4.0  # queued behind the first
        assert gpu.busy_seconds == 4.0

    def test_utilization_bounded(self):
        gpu = GPU("g0")
        gpu.occupy(0.0, 5.0)
        assert gpu.utilization(10.0) == pytest.approx(0.5)
        assert gpu.utilization(2.0) == 1.0  # capped
        assert gpu.utilization(0.0) == 0.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            GPUSpec(memory=-1.0)


class TestServer:
    def test_host_memory_accounting(self, sim):
        server = Server(sim, "s0", [GPU("g0")])
        assert server.host_reserve(100 * GB)
        assert server.host_memory_free == pytest.approx(156 * GB)
        server.host_release(100 * GB)
        assert server.host_memory_free == pytest.approx(256 * GB)

    def test_host_reserve_fails_when_full(self, sim):
        server = Server(sim, "s0", [GPU("g0")], host_memory=10 * GB)
        assert not server.host_reserve(11 * GB)

    def test_host_release_underflow_raises(self, sim):
        server = Server(sim, "s0", [GPU("g0")])
        with pytest.raises(ValueError):
            server.host_release(GB)

    def test_free_gpus_filter(self, sim):
        g0, g1 = GPU("g0"), GPU("g1")
        server = Server(sim, "s0", [g0, g1])
        g0.reserve("a", 70 * GB)
        assert server.free_gpus(min_free_bytes=20 * GB) == [g1]

    def test_server_requires_gpus(self, sim):
        with pytest.raises(ValueError):
            Server(sim, "s0", [])


class TestClusterTopology:
    def test_paper_cluster_has_42_servers_82_gpus(self, sim):
        cluster = make_paper_cluster(sim)
        assert len(cluster.servers) == 42
        assert cluster.gpu_count == 82

    def test_paper_cluster_gpu_mix(self, sim):
        cluster = make_paper_cluster(sim)
        sizes = sorted(len(s.gpus) for s in cluster.servers)
        assert sizes.count(1) == 10
        assert sizes.count(2) == 28
        assert sizes.count(4) == 4

    def test_small_cluster_dimensions(self, sim):
        cluster = make_small_cluster(sim, n_servers=4, gpus_per_server=3)
        assert len(cluster.servers) == 4
        assert cluster.gpu_count == 12

    def test_gpu_and_server_lookup(self, sim):
        cluster = make_small_cluster(sim)
        gpu = cluster.gpus[0]
        assert cluster.gpu(gpu.gid) is gpu
        assert cluster.server(gpu.server.sid) is gpu.server
        assert cluster.rack_of(gpu.server).rid == gpu.server.rack_id


class TestFragmentation:
    def test_warm_up_reaches_subscription_target(self, sim):
        cluster = make_paper_cluster(sim)
        frag = FragmentationModel(sim, cluster, RandomStreams(0))
        frag.warm_up()
        assert cluster.subscription_rate() >= 1.8  # near the 2.16 target

    def test_free_gpu_probability_drops_after_warmup(self, sim):
        cluster = make_paper_cluster(sim)
        before = cluster.free_gpu_probability()
        frag = FragmentationModel(sim, cluster, RandomStreams(0))
        frag.warm_up()
        after = cluster.free_gpu_probability()
        assert before == 1.0
        assert after < 0.5

    def test_colocated_gpus_become_scarce(self, sim):
        """The paper's headline fragmentation fact: 4 co-located free GPUs
        are essentially unobtainable (0.02% probability)."""
        cluster = make_paper_cluster(sim)
        frag = FragmentationModel(sim, cluster, RandomStreams(0))
        frag.warm_up()
        assert cluster.colocated_probability(4) <= 0.05

    def test_tenants_depart_over_time(self, sim):
        cluster = make_small_cluster(sim)
        config = FragmentationConfig(mean_lifetime=10.0)
        frag = FragmentationModel(sim, cluster, RandomStreams(0), config)
        frag.warm_up(rounds=20)
        population = len(frag.tenants)
        # Tenant attach/detach must conserve memory accounting.
        sim.run(until=100.0)
        frag.stop()
        for gpu in cluster.gpus:
            assert gpu.background_mem >= -1e-6

    def test_sm_usage_well_below_subscription(self, sim):
        """Subscription ~216% but actual SM usage ~17-24% (Table 1)."""
        cluster = make_paper_cluster(sim)
        frag = FragmentationModel(sim, cluster, RandomStreams(0))
        frag.warm_up()
        samples = frag.sm_utilization_samples()
        mean_usage = sum(samples) / len(samples)
        assert mean_usage < 100 * cluster.subscription_rate() / 3


class TestAllocator:
    def test_reserve_on_specific_gpu(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        gpu = small_cluster.gpus[0]
        res = allocator.reserve_on("opt", gpu, 10 * GB)
        assert gpu.free_memory == pytest.approx(70 * GB)
        allocator.release(res)
        assert gpu.free_memory == pytest.approx(80 * GB)

    def test_same_model_anti_affinity_enforced(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        gpu = small_cluster.gpus[0]
        allocator.reserve_on("opt", gpu, GB)
        with pytest.raises(AllocationError):
            allocator.reserve_on("opt", gpu, GB)

    def test_anti_affinity_override_for_transitions(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        gpu = small_cluster.gpus[0]
        allocator.reserve_on("opt", gpu, GB)
        res = allocator.reserve_on("opt", gpu, GB, allow_same_model=True)
        assert res.gpu is gpu

    def test_different_models_may_share(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        gpu = small_cluster.gpus[0]
        allocator.reserve_on("opt", gpu, GB)
        allocator.reserve_on("bert", gpu, GB)  # no error

    def test_allocate_stages_uses_distinct_gpus(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        reservations = allocator.allocate_stages("opt", [GB] * 4)
        gpus = {r.gpu.gid for r in reservations}
        assert len(gpus) == 4

    def test_allocate_stages_atomic_on_failure(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        n = small_cluster.gpu_count
        with pytest.raises(AllocationError):
            allocator.allocate_stages("opt", [GB] * (n + 1))
        assert allocator.total_reserved() == 0

    def test_scorer_steers_placement(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        target = small_cluster.gpus[3]
        res = allocator.allocate_stages(
            "opt", [GB], scorer=lambda g: 1.0 if g is target else 0.0
        )
        assert res[0].gpu is target

    def test_memory_shortage_raises(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        with pytest.raises(AllocationError):
            allocator.allocate_stages("opt", [100 * GB])
        assert allocator.failed_requests == 1

    def test_double_release_rejected(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        res = allocator.reserve_on("opt", small_cluster.gpus[0], GB)
        allocator.release(res)
        with pytest.raises(AllocationError):
            allocator.release(res)

    def test_resize_updates_reservation(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        res = allocator.reserve_on("opt", small_cluster.gpus[0], GB)
        allocator.resize(res, 5 * GB)
        assert res.nbytes == 5 * GB
        assert allocator.total_reserved() == pytest.approx(5 * GB)

    def test_gpus_in_use_counts_distinct(self, sim, small_cluster):
        allocator = GPUAllocator(small_cluster)
        allocator.allocate_stages("opt", [GB, GB])
        allocator.allocate_stages("bert", [GB])
        assert allocator.gpus_in_use() >= 2


class TestHRG:
    def test_recent_events_raise_contention(self, sim, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        server = small_cluster.servers[0]
        base = hrg.contention_score(server, now=0.0)
        hrg.register_scaling_event(server, now=0.0)
        assert hrg.contention_score(server, now=0.0) > base

    def test_contention_decays_over_time(self, sim, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        server = small_cluster.servers[0]
        hrg.register_scaling_event(server, now=0.0)
        early = hrg.contention_score(server, now=1.0)
        late = hrg.contention_score(server, now=50.0)
        assert late < early

    def test_rack_level_contention_spills_to_neighbours(self, sim, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        a, b = small_cluster.servers[0], None
        for server in small_cluster.servers[1:]:
            if server.rack_id == a.rack_id:
                b = server
                break
        assert b is not None
        hrg.register_scaling_event(a, now=0.0)
        assert hrg.contention_score(b, now=0.0) > 0.0

    def test_rank_servers_prefers_quiet_paths(self, sim, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        noisy = small_cluster.servers[0]
        for _ in range(5):
            hrg.register_scaling_event(noisy, now=0.0)
        ranked = hrg.rank_servers(small_cluster.servers, now=0.0)
        assert ranked[-1] is noisy

    def test_cluster_level_events_affect_everyone(self, sim, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster, HRGWeights(server=0, rack=0, cluster=1))
        hrg.register_scaling_event(small_cluster.servers[0], now=0.0)
        for server in small_cluster.servers:
            assert hrg.contention_score(server, now=0.0) > 0.0
