"""Tests for the contention-aware migration planner (§8)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfer.datamover import TransferMethod
from repro.transfer.links import GB
from repro.transfer.migration import (
    Endpoint,
    ItemKind,
    MigrationItem,
    MigrationPlanner,
    refactor_items,
)


def ep(server: str, gpu: str = "g0", rdma: bool = True) -> Endpoint:
    return Endpoint(server_id=server, gpu_id=gpu, rdma=rdma)


def item(nbytes: float, src: str, dst: str, kind=ItemKind.KV, rdma=True, tag=""):
    return MigrationItem(kind, nbytes, ep(src, rdma=rdma), ep(dst, rdma=rdma), tag)


class TestMethodSelection:
    def test_same_server_uses_local(self):
        plan = MigrationPlanner().plan_item(item(1 * GB, "s1", "s1"))
        assert plan.method is TransferMethod.LOCAL

    def test_cross_server_rdma(self):
        plan = MigrationPlanner().plan_item(item(1 * GB, "s1", "s2"))
        assert plan.method is TransferMethod.RDMA

    def test_sendfile_fallback_without_rdma(self):
        plan = MigrationPlanner().plan_item(item(1 * GB, "s1", "s2", rdma=False))
        assert plan.method is TransferMethod.SENDFILE

    def test_force_nccl_ablation(self):
        planner = MigrationPlanner(force_nccl=True)
        plan = planner.plan_item(item(1 * GB, "s1", "s2"))
        assert plan.method is TransferMethod.NCCL
        assert plan.setup_time > 1.0  # "several seconds" of §8

    def test_nccl_much_slower_for_small_kv(self):
        """The §8 rationale: for MB-scale KV deltas, setup dominates."""
        fast = MigrationPlanner().plan_item(item(64e6, "s1", "s2"))
        slow = MigrationPlanner(force_nccl=True).plan_item(item(64e6, "s1", "s2"))
        assert slow.duration > 10 * fast.duration

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            item(-1.0, "s1", "s2")


class TestScheduling:
    def test_disjoint_pairs_overlap(self):
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [item(1 * GB, "s1", "s2"), item(1 * GB, "s3", "s4")]
        )
        assert schedule.makespan == pytest.approx(
            max(t.plan.duration for t in schedule.transfers)
        )

    def test_shared_egress_serialises(self):
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [item(1 * GB, "s1", "s2"), item(1 * GB, "s1", "s3")]
        )
        assert schedule.makespan == pytest.approx(schedule.serial_time)

    def test_shared_ingress_serialises(self):
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [item(1 * GB, "s2", "s1"), item(1 * GB, "s3", "s1")]
        )
        assert schedule.makespan == pytest.approx(schedule.serial_time)

    def test_full_duplex_overlaps_in_and_out(self):
        """s1 sending and s1 receiving use different channels."""
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [item(1 * GB, "s1", "s2"), item(1 * GB, "s3", "s1")]
        )
        assert schedule.makespan < schedule.serial_time

    def test_local_moves_do_not_block_nic(self):
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [item(1 * GB, "s1", "s1"), item(1 * GB, "s1", "s2")]
        )
        assert schedule.makespan < schedule.serial_time

    def test_makespan_between_bounds(self):
        planner = MigrationPlanner()
        items = [
            item(0.5 * GB, "s1", "s2"),
            item(1.0 * GB, "s1", "s3"),
            item(0.25 * GB, "s2", "s3"),
            item(2.0 * GB, "s4", "s1"),
        ]
        schedule = planner.schedule(items)
        assert schedule.busiest_channel_time() <= schedule.makespan + 1e-12
        assert schedule.makespan <= schedule.serial_time + 1e-12

    def test_empty_schedule(self):
        schedule = MigrationPlanner().schedule([])
        assert schedule.makespan == 0.0
        assert schedule.total_bytes == 0.0

    def test_bytes_by_method(self):
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [item(1 * GB, "s1", "s1"), item(2 * GB, "s1", "s2")]
        )
        by_method = schedule.bytes_by_method()
        assert by_method[TransferMethod.LOCAL] == pytest.approx(1 * GB)
        assert by_method[TransferMethod.RDMA] == pytest.approx(2 * GB)

    def test_kv_makespan_only_counts_kv(self):
        planner = MigrationPlanner()
        schedule = planner.schedule(
            [
                item(4 * GB, "s1", "s2", kind=ItemKind.PARAMS),
                item(0.1 * GB, "s3", "s4", kind=ItemKind.KV),
            ]
        )
        assert schedule.kv_makespan() < schedule.makespan

    @given(
        sizes=st.lists(
            st.floats(min_value=1e6, max_value=5e9), min_size=1, max_size=12
        ),
        servers=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=60, deadline=None)
    def test_schedule_is_channel_consistent(self, sizes, servers):
        """No two transfers overlap on any channel; bounds always hold."""
        planner = MigrationPlanner()
        items = [
            item(s, f"s{i % servers}", f"s{(i + 1) % servers}", tag=str(i))
            for i, s in enumerate(sizes)
        ]
        schedule = planner.schedule(items)
        busy: dict[str, list[tuple[float, float]]] = {}
        for t in schedule.transfers:
            src, dst = t.item.src.server_id, t.item.dst.server_id
            channels = (
                [f"{src}:pcie"]
                if src == dst
                else [f"{src}:egress", f"{dst}:ingress"]
            )
            for c in channels:
                for a, b in busy.get(c, []):
                    assert t.end <= a + 1e-9 or t.start >= b - 1e-9
                busy.setdefault(c, []).append((t.start, t.end))
        assert schedule.busiest_channel_time() <= schedule.makespan + 1e-9
        assert schedule.makespan <= schedule.serial_time + 1e-9


class TestRefactorItems:
    def test_builds_param_and_kv_items(self):
        items = refactor_items(
            stage_moves=[(ep("s1"), ep("s2"), 5.0), (ep("s1"), ep("s1"), 0.0)],
            kv_moves=[(ep("s1"), ep("s2"), 3.0, "req7")],
        )
        kinds = [i.kind for i in items]
        assert kinds == [ItemKind.PARAMS, ItemKind.KV]
        assert items[1].tag == "req7"

    def test_skips_zero_byte_moves(self):
        items = refactor_items(
            stage_moves=[(ep("a"), ep("b"), 0.0)],
            kv_moves=[(ep("a"), ep("b"), 0.0, "r")],
        )
        assert items == []
