"""Tests for stages, replicas, the router, and inflight stage swaps."""

from __future__ import annotations

import pytest

from repro.cluster.allocator import GPUAllocator
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.batching import BatcherConfig
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.pipeline.router import ModelRouter
from repro.simulation.randomness import RandomStreams
from repro.workloads.requests import RequestSampler


@pytest.fixture
def llama_ladder(llama_profile):
    return GranularityLadder(llama_profile, stage_counts=(1, 2, 4))


def deploy_replica(sim, cluster, profile, plan, completed, batch=8, max_wait=0.01):
    allocator = GPUAllocator(cluster)
    mems = plan.memory_per_stage(batch, profile.spec.kv_bytes_per_request)
    reservations = allocator.allocate_stages(profile.spec.name, mems)
    replica = PipelineReplica(
        sim,
        profile,
        plan,
        reservations,
        batcher_config=BatcherConfig(max_batch=batch, max_wait=max_wait),
        on_request_complete=completed.append,
    )
    return replica, allocator


@pytest.fixture
def sampler():
    return RequestSampler("LLAMA2-7B", RandomStreams(0).stream("r"))


class TestReplicaLifecycle:
    def test_loading_replica_rejects_submissions(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), []
        )
        assert replica.state is ReplicaState.LOADING
        with pytest.raises(RuntimeError):
            replica.submit(sampler.sample(0.0))

    def test_requests_complete_with_full_breakdown(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        for _ in range(5):
            replica.submit(sampler.sample(sim.now))
        sim.run_until_idle()
        assert len(completed) == 5
        for req in completed:
            assert req.completed
            assert req.exec_time > 0
            assert req.comm_time > 0  # 2 stages -> 1 hop
            assert req.queue_time >= 0
            latency = req.latency
            assert latency == pytest.approx(
                req.queue_time + req.exec_time + req.comm_time, rel=1e-6
            )
            assert req.prefill_done is not None
            assert req.prefill_done <= req.completion_time

    def test_single_stage_replica_has_no_comm(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(1), completed
        )
        replica.activate()
        replica.submit(sampler.sample(0.0))
        sim.run_until_idle()
        assert completed[0].comm_time == 0.0

    def test_deeper_pipeline_has_more_comm(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        def run(plan):
            from repro.simulation.engine import Simulator
            from repro.cluster.cluster import make_small_cluster

            local_sim = Simulator()
            cluster = make_small_cluster(local_sim, n_servers=6, gpus_per_server=2)
            completed = []
            replica, _ = deploy_replica(
                local_sim, cluster, llama_profile, plan, completed
            )
            replica.activate()
            local_sampler = RequestSampler("LLAMA2-7B", RandomStreams(0).stream("r"))
            replica.submit(local_sampler.sample(0.0))
            local_sim.run_until_idle()
            return completed[0].comm_time

        assert run(llama_ladder.plan(4)) > run(llama_ladder.plan(2))

    def test_drain_completes_inflight_then_releases(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        released = []
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.on_released = released.append
        replica.activate()
        replica.submit(sampler.sample(0.0))
        replica.drain()
        assert replica.state is ReplicaState.DRAINING
        sim.run_until_idle()
        assert len(completed) == 1
        assert replica.state is ReplicaState.RELEASED
        assert released == [replica]

    def test_drain_idle_replica_releases_immediately(
        self, sim, small_cluster, llama_profile, llama_ladder
    ):
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), []
        )
        replica.activate()
        replica.drain()
        assert replica.state is ReplicaState.RELEASED

    def test_double_activate_rejected(
        self, sim, small_cluster, llama_profile, llama_ladder
    ):
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), []
        )
        replica.activate()
        with pytest.raises(RuntimeError):
            replica.activate()

    def test_gpu_busy_time_accumulates(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        replica.submit(sampler.sample(0.0))
        sim.run_until_idle()
        assert all(s.gpu.busy_seconds > 0 for s in replica.stages)


class TestInflightSwap:
    def test_swap_moves_new_batches_to_new_chain(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        replica, allocator = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        replica.submit(sampler.sample(0.0))
        sim.run(max_events=2)  # job in flight on the old chain

        new_plan = llama_ladder.plan(4)
        mems = new_plan.memory_per_stage(8, llama_profile.spec.kv_bytes_per_request)
        new_res = [
            allocator.reserve_on("LLAMA2-7B", gpu, mem, allow_same_model=True)
            for gpu, mem in zip(
                [g for g in small_cluster.gpus if not g.hosts_model("LLAMA2-7B")][:4],
                mems,
            )
        ]
        retired = []
        replica.on_stage_retired = retired.append
        old_stages = replica.swap_stages(new_plan, new_res)
        assert replica.plan.n_stages == 4
        # New submission runs on the 4-stage chain.
        replica.submit(sampler.sample(sim.now))
        sim.run_until_idle()
        assert len(completed) == 2
        # Old chain fully retired after its in-flight job finished.
        assert set(retired) == set(old_stages)
        assert replica.reconfig_count == 1

    def test_swap_with_idle_chain_retires_immediately(
        self, sim, small_cluster, llama_profile, llama_ladder
    ):
        completed = []
        replica, allocator = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        new_plan = llama_ladder.plan(1)
        mems = new_plan.memory_per_stage(8, llama_profile.spec.kv_bytes_per_request)
        free = [g for g in small_cluster.gpus if not g.hosts_model("LLAMA2-7B")]
        new_res = [allocator.reserve_on("LLAMA2-7B", free[0], mems[0])]
        retired = []
        replica.on_stage_retired = retired.append
        old = replica.swap_stages(new_plan, new_res)
        assert set(retired) == set(old)

    def test_no_request_lost_across_repeated_swaps(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        """The paper's zero-interruption guarantee: every submitted request
        completes across an arbitrary refactoring sequence."""
        completed = []
        replica, allocator = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(1), completed, batch=4
        )
        replica.activate()
        submitted = 0

        def swap_to(n_stages):
            plan = llama_ladder.plan(n_stages)
            mems = plan.memory_per_stage(4, llama_profile.spec.kv_bytes_per_request)
            pool = [g for g in small_cluster.gpus]
            new_res = []
            for mem in mems:
                gpu = max(pool, key=lambda g: g.free_memory)
                pool.remove(gpu)
                new_res.append(
                    allocator.reserve_on("LLAMA2-7B", gpu, mem, allow_same_model=True)
                )
            replica.on_stage_retired = lambda s: (
                None if s.reservation.released else allocator.release(s.reservation)
            )
            replica.swap_stages(plan, new_res)

        for step, n in enumerate((2, 4, 2, 1)):
            for _ in range(3):
                replica.submit(sampler.sample(sim.now))
                submitted += 1
            sim.schedule(0.1 * (step + 1), swap_to, n)
            sim.run(until=sim.now + 0.5)
        sim.run_until_idle()
        assert len(completed) == submitted

    def test_swap_on_draining_replica_rejected(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        """A dying replica must never acquire a fresh chain."""
        completed = []
        replica, allocator = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        replica.submit(sampler.sample(0.0))
        sim.run(max_events=2)  # job in flight keeps it DRAINING
        replica.drain()
        assert replica.state is ReplicaState.DRAINING
        new_plan = llama_ladder.plan(1)
        mems = new_plan.memory_per_stage(8, llama_profile.spec.kv_bytes_per_request)
        free = [g for g in small_cluster.gpus if not g.hosts_model("LLAMA2-7B")]
        new_res = [allocator.reserve_on("LLAMA2-7B", free[0], mems[0])]
        with pytest.raises(RuntimeError):
            replica.swap_stages(new_plan, new_res)

    def test_untracked_chain_completion_is_an_anomaly_not_a_negative(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        """A job completing on a chain whose counter vanished must be
        recorded as an anomaly — not silently resurrect the counter or
        drive it negative."""
        completed = []
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        replica.submit(sampler.sample(0.0))
        sim.run(max_events=2)
        assert replica.inflight_jobs == 1
        replica._chain_jobs.clear()  # simulate a lost chain entry
        sim.run_until_idle()
        assert len(completed) == 1  # the request still completes
        assert replica.anomalies  # ...but the inconsistency is recorded
        assert all(v >= 0 for v in replica._chain_jobs.values())

    def test_state_history_records_full_lifecycle(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        replica.submit(sampler.sample(0.0))
        sim.run(max_events=2)
        replica.drain()
        sim.run_until_idle()
        assert [s for _, s in replica.state_history] == [
            ReplicaState.LOADING,
            ReplicaState.ACTIVE,
            ReplicaState.DRAINING,
            ReplicaState.RELEASED,
        ]
        assert replica.anomalies == []


class TestRouter:
    def test_requests_pend_without_active_replicas(self, sim, sampler):
        router = ModelRouter(sim, "LLAMA2-7B")
        router.submit(sampler.sample(0.0))
        assert len(router.pending) == 1
        assert router.total_queue == 1

    def test_add_drains_pending(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        router = ModelRouter(sim, "LLAMA2-7B")
        router.submit(sampler.sample(0.0))
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        router.add(replica)
        sim.run_until_idle()
        assert len(completed) == 1
        assert len(router.pending) == 0

    def test_jsq_balances_load(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        completed = []
        router = ModelRouter(sim, "LLAMA2-7B")
        replicas = []
        for _ in range(2):
            replica, _ = deploy_replica(
                sim, small_cluster, llama_profile, llama_ladder.plan(2), completed,
                batch=4, max_wait=5.0,
            )
            replica.activate()
            router.add(replica)
            replicas.append(replica)
        for _ in range(8):
            router.submit(sampler.sample(0.0))
        queues = [r.queue_length for r in replicas]
        assert abs(queues[0] - queues[1]) <= 1

    def test_jsq_normalises_by_effective_batch(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        """A replica deployed degraded (halved batch under fragmentation)
        must attract proportionally less load than a full one, even though
        both share the same partition plan."""
        plan = llama_ladder.plan(2)
        degraded, _ = deploy_replica(
            sim, small_cluster, llama_profile, plan, [], batch=8, max_wait=5.0
        )
        full, _ = deploy_replica(
            sim, small_cluster, llama_profile, plan, [], batch=16, max_wait=5.0
        )
        router = ModelRouter(sim, "LLAMA2-7B")
        for replica in (degraded, full):  # degraded first: ties would pick it
            replica.activate()
            router.add(replica)
        for replica in (degraded, full):
            for _ in range(6):
                replica.submit(sampler.sample(0.0))
        # Equal absolute queues, but 6/8 of a degraded batch is deeper
        # congestion than 6/16 of a full one.
        assert degraded.queue_length == full.queue_length == 6
        assert router._pick() is full

    def test_router_reconciles_submitted_routed_pending(
        self, sim, small_cluster, llama_profile, llama_ladder, sampler
    ):
        router = ModelRouter(sim, "LLAMA2-7B")
        router.submit(sampler.sample(0.0))  # pends (no replica yet)
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), []
        )
        replica.activate()
        router.add(replica)  # drains the pending request
        router.submit(sampler.sample(0.0))
        assert router.submitted == 2
        assert router.routed + len(router.pending) == router.submitted

    def test_remove_stops_routing(self, sim, small_cluster, llama_profile, llama_ladder, sampler):
        completed = []
        router = ModelRouter(sim, "LLAMA2-7B")
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), completed
        )
        replica.activate()
        router.add(replica)
        router.remove(replica)
        router.submit(sampler.sample(0.0))
        assert len(router.pending) == 1

    def test_gateway_update_counter(self, sim, small_cluster, llama_profile, llama_ladder):
        router = ModelRouter(sim, "LLAMA2-7B")
        replica, _ = deploy_replica(
            sim, small_cluster, llama_profile, llama_ladder.plan(2), []
        )
        replica.activate()
        router.add(replica)
        router.add(replica)  # idempotent
        router.remove(replica)
        assert router.gateway_updates == 2
