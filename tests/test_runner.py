"""Tests for the parallel experiment runner and its result cache.

The determinism contract is the load-bearing one: seeded runs are
order-independent, so a parallel sweep must be *equal* — every RunSummary
field — to the sequential sweep, at any job count.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments import figures
from repro.experiments.common import ExperimentConfig, run_comparison, sweep_cv
from repro.experiments.runner import (
    ExperimentRunner,
    ResultCache,
    RunTask,
    as_task,
    cache_key,
    code_fingerprint,
    execute_task,
)
from repro.experiments.systems import SYSTEM_FACTORIES, make_flexpipe

# Short horizons keep each simulation under a second; determinism claims
# are horizon-independent.
FAST = dict(
    qps=10.0,
    duration=40.0,
    settle_time=120.0,
    warmup_time=10.0,
    drain_time=10.0,
)


@pytest.fixture
def fast_cfg() -> ExperimentConfig:
    return ExperimentConfig(cv=2.0, seed=0, **FAST)


def seq_runner() -> ExperimentRunner:
    return ExperimentRunner(jobs=1, use_cache=False)


def par_runner(jobs: int = 4) -> ExperimentRunner:
    return ExperimentRunner(jobs=jobs, use_cache=False)


class TestRunTask:
    def test_overrides_are_canonicalised(self, fast_cfg):
        a = RunTask.create("FlexPipe", fast_cfg, {"b": 1, "a": 2})
        b = RunTask.create("FlexPipe", fast_cfg, {"a": 2, "b": 1})
        assert a == b
        assert cache_key(a) == cache_key(b)

    def test_as_task_resolves_registered_factories(self, fast_cfg):
        task = as_task("FlexPipe", SYSTEM_FACTORIES["FlexPipe"], fast_cfg)
        assert task is not None and task.system == "FlexPipe"

    def test_as_task_rejects_adhoc_callables(self, fast_cfg):
        assert as_task("FlexPipe", lambda ctx, c: None, fast_cfg) is None

    def test_cache_key_differs_by_config_and_overrides(self, fast_cfg):
        base = RunTask.create("FlexPipe", fast_cfg)
        other_cfg = RunTask.create(
            "FlexPipe", dataclasses.replace(fast_cfg, seed=1)
        )
        other_sys = RunTask.create("AlpaServe", fast_cfg)
        overridden = RunTask.create(
            "FlexPipe", fast_cfg, {"enable_refactoring": False}
        )
        keys = {cache_key(t) for t in (base, other_cfg, other_sys, overridden)}
        assert len(keys) == 4

    def test_code_fingerprint_is_stable(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestDeterminism:
    def test_parallel_comparison_identical_to_sequential(self, fast_cfg):
        factories = {
            name: SYSTEM_FACTORIES[name] for name in ("FlexPipe", "AlpaServe")
        }
        seq = run_comparison(factories, fast_cfg, runner=seq_runner())
        par = run_comparison(factories, fast_cfg, runner=par_runner())
        assert seq == par  # every RunSummary field, p50/p99/goodput included
        for name in factories:
            assert seq[name].latency_percentiles == par[name].latency_percentiles
            assert seq[name].goodput == par[name].goodput

    def test_jobs_1_vs_jobs_4_sweep_identical(self, fast_cfg):
        factories = {"FlexPipe": SYSTEM_FACTORIES["FlexPipe"]}
        one = sweep_cv(factories, fast_cfg, (1.0, 4.0), runner=par_runner(1))
        four = sweep_cv(factories, fast_cfg, (1.0, 4.0), runner=par_runner(4))
        assert one == four

    def test_adhoc_factories_still_run_in_process(self, fast_cfg):
        factories = {
            "FlexPipe": SYSTEM_FACTORIES["FlexPipe"],
            "custom": lambda ctx, c: make_flexpipe(ctx, c, enable_refactoring=False),
        }
        out = run_comparison(factories, fast_cfg, runner=par_runner())
        assert set(out) == {"FlexPipe", "custom"}
        assert out["custom"].offered == out["FlexPipe"].offered


class TestResultCache:
    def test_second_invocation_runs_zero_simulations(self, fast_cfg, tmp_path):
        task = RunTask.create("FlexPipe", fast_cfg)
        first = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        r1 = first.run_task(task)
        assert first.simulations_run == 1 and not r1.cached
        second = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        r2 = second.run_task(task)
        assert second.simulations_run == 0
        assert second.cache_hits == 1 and r2.cached
        assert r1.summary == r2.summary

    def test_figure_second_invocation_is_pure_cache(self, tmp_path):
        kwargs = dict(cvs=(1.0,), seed=0)
        first = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        rows1 = figures.fig3_rows(runner=first, **kwargs)
        assert first.simulations_run == len(kwargs["cvs"])
        second = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        rows2 = figures.fig3_rows(runner=second, **kwargs)
        assert second.simulations_run == 0
        assert second.cache_hits == len(kwargs["cvs"])
        assert rows1 == rows2

    def test_config_change_misses_the_cache(self, fast_cfg, tmp_path):
        runner = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        runner.run_task(RunTask.create("FlexPipe", fast_cfg))
        runner.run_task(
            RunTask.create("FlexPipe", dataclasses.replace(fast_cfg, seed=1))
        )
        assert runner.simulations_run == 2

    def test_corrupt_cache_entry_is_a_miss(self, fast_cfg, tmp_path):
        task = RunTask.create("FlexPipe", fast_cfg)
        cache = ResultCache(tmp_path)
        key = cache_key(task)
        cache.root.mkdir(exist_ok=True)
        (cache.root / f"{key}.pkl").write_bytes(b"not a pickle")
        assert cache.get(key) is None
        runner = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        runner.run_task(task)
        assert runner.simulations_run == 1

    def test_clear_empties_the_cache(self, fast_cfg, tmp_path):
        runner = ExperimentRunner(jobs=1, use_cache=True, cache_dir=tmp_path)
        runner.run_task(RunTask.create("FlexPipe", fast_cfg))
        assert runner.cache.clear() == 1
        assert runner.cache.clear() == 0


class TestExtractors:
    def test_extractor_output_crosses_the_pool(self, fast_cfg):
        task = RunTask.create(
            "AlpaServe",
            fast_cfg,
            extract="repro.experiments.figures:extract_initial_init_times",
        )
        summary, extra = execute_task(task)
        assert summary.completed > 0
        assert isinstance(extra, list) and extra
        assert all(t > 0 for t in extra)

    def test_bad_extractor_spec_rejected(self, fast_cfg):
        task = RunTask.create("FlexPipe", fast_cfg, extract="no-colon")
        with pytest.raises(ValueError, match="module:function"):
            execute_task(task)
