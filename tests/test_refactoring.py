"""Tests for monitoring, Eq. 4/5 policy, Eq. 6-9 placement, and the executor."""

from __future__ import annotations

import pytest

from repro.metrics.collector import MetricsCollector
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.batching import BatcherConfig
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.refactoring.executor import RefactoringExecutor
from repro.refactoring.granularity import (
    GranularityPolicy,
    estimate_latency,
    estimate_throughput,
    instance_count,
)
from repro.refactoring.monitor import WorkloadMonitor
from repro.refactoring.placement import (
    interference_multiplier,
    make_eq6_scorer,
    multiplexing_penalty,
)
from repro.scaling.warm_cache import HostParamCache
from repro.simulation.randomness import RandomStreams
from repro.workloads.requests import Request, RequestSampler


class TestMonitor:
    def test_cv_tracks_arrival_process(self):
        monitor = WorkloadMonitor(window=100.0)
        rng = RandomStreams(0).stream("a")
        t = 0.0
        for _ in range(200):
            t += float(rng.exponential(0.5))
            monitor.observe(t)
        assert monitor.cv(t) == pytest.approx(1.0, rel=0.3)

    def test_gradient_detects_rising_intensity(self):
        monitor = WorkloadMonitor(window=10.0)
        t = 0.0
        for i in range(100):
            gap = 1.0 / (1.0 + i * 0.3)  # accelerating arrivals
            t += gap
            monitor.observe(t)
            if i % 10 == 0:
                monitor.sample_rate(t)
        assert monitor.intensity_gradient(t) > 0

    def test_gradient_zero_without_samples(self):
        assert WorkloadMonitor().intensity_gradient(0.0) == 0.0


class TestGranularityPolicy:
    @pytest.fixture(scope="class")
    def policy(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4, 8, 16))
        return GranularityPolicy(llama_profile, ladder)

    def test_selected_granularity_is_monotone_in_cv(self, policy):
        """Insight 3: burstier workloads get (weakly) deeper pipelines."""
        picks = [policy.select(cv) for cv in (0.1, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)]
        assert all(b >= a for a, b in zip(picks, picks[1:]))
        assert picks[-1] > picks[0]

    def test_scores_cover_all_rungs(self, policy):
        scores = policy.scores(1.0)
        assert set(scores) == {2, 4, 8, 16}
        assert all(s > 0 for s in scores.values())

    def test_matching_term_peaks_at_setpoint(self, policy):
        est = policy.estimates[8]
        at_setpoint = policy.score(8, est.cv_setpoint)
        off_setpoint = policy.score(8, est.cv_setpoint + 5.0)
        assert at_setpoint > off_setpoint

    def test_invalid_params_rejected(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        with pytest.raises(ValueError):
            GranularityPolicy(llama_profile, ladder, alpha=1.5)
        with pytest.raises(ValueError):
            GranularityPolicy(llama_profile, ladder, sigma=0.0)


class TestPerformanceEstimates:
    def test_throughput_grows_with_batch(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(4,))
        plan = ladder.plan(4)
        t8 = estimate_throughput(llama_profile, plan, batch=8)
        t64 = estimate_throughput(llama_profile, plan, batch=64)
        assert t64 > t8

    def test_latency_grows_with_stage_count(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 16))
        l2 = estimate_latency(llama_profile, ladder.plan(2))
        l16 = estimate_latency(llama_profile, ladder.plan(16))
        assert l16 > l2  # comm hops dominate at fine granularity

    def test_instance_count_eq5(self):
        # mu_k = 10 / (1 + 0.02*8) = 8.62; 50/8.62 -> 6 instances
        assert instance_count(50.0, 10.0, 8) == 6
        assert instance_count(0.0, 10.0, 8) == 1  # floor
        with pytest.raises(ValueError):
            instance_count(10.0, 0.0, 4)

    def test_instance_count_penalises_deep_pipelines(self):
        coarse = instance_count(100.0, 20.0, 2)
        fine = instance_count(100.0, 20.0, 32)
        assert fine >= coarse


class TestPlacement:
    def test_penalty_quadratic_in_cv(self):
        low = multiplexing_penalty(1.0)
        high = multiplexing_penalty(4.0)
        assert high / low == pytest.approx((1 + 0.25 * 16) / (1 + 0.25), rel=1e-6)

    def test_interference_only_when_shared(self, small_cluster):
        gpu = small_cluster.gpus[0]
        assert interference_multiplier(gpu, cv=4.0) == 1.0
        gpu.reserve("a", 1.0, model="m1")
        assert interference_multiplier(gpu, cv=4.0) == 1.0  # one model: isolated
        gpu.reserve("b", 1.0, model="m2")
        assert interference_multiplier(gpu, cv=4.0) > 1.0

    def test_scorer_avoids_sharing_by_default(self, small_cluster):
        scorer = make_eq6_scorer(lambda: 2.0)
        empty, shared = small_cluster.gpus[0], small_cluster.gpus[1]
        shared.reserve("x", 1.0, model="other")
        assert scorer(empty) > scorer(shared)

    def test_scorer_prefers_sharing_for_muxserve(self, small_cluster):
        scorer = make_eq6_scorer(lambda: 0.5, prefer_colocation=True)
        empty, shared = small_cluster.gpus[0], small_cluster.gpus[1]
        shared.reserve("x", 1.0, model="other")
        assert scorer(shared) > scorer(empty)

    def test_negative_coefficients_rejected(self):
        with pytest.raises(ValueError):
            multiplexing_penalty(1.0, gamma0=-0.1)


class TestExecutor:
    def _deploy(self, ctx, profile, ladder, n_stages, completed):
        plan = ladder.plan(n_stages)
        mems = plan.memory_per_stage(8, profile.spec.kv_bytes_per_request)
        reservations = ctx.allocator.allocate_stages(profile.spec.name, mems)
        replica = PipelineReplica(
            ctx.sim,
            profile,
            plan,
            reservations,
            batcher_config=BatcherConfig(max_batch=8, max_wait=0.01),
            on_request_complete=completed.append,
        )
        replica.activate()
        return replica

    @pytest.fixture
    def setup(self, ctx, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        metrics = MetricsCollector("test")
        executor = RefactoringExecutor(
            ctx, llama_profile, ladder, metrics, warm_cache=HostParamCache()
        )
        return ctx, ladder, metrics, executor

    def test_split_transition_changes_granularity(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        assert executor.refactor(replica, 4)
        ctx.sim.run_until_idle()
        assert replica.plan.n_stages == 4
        assert executor.transitions_completed == 1
        assert metrics.events[-1].kind == "refactor"
        assert executor.consistency_checks == 1

    def test_merge_transition_releases_gpus(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 4, completed)
        before = ctx.allocator.gpus_in_use()
        assert executor.refactor(replica, 2)
        ctx.sim.run_until_idle()
        assert replica.plan.n_stages == 2
        assert ctx.allocator.gpus_in_use() < before

    def test_requests_survive_transition(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        sampler = RequestSampler("LLAMA2-7B", RandomStreams(0).stream("r"))
        for _ in range(4):
            replica.submit(sampler.sample(ctx.sim.now))
        assert executor.refactor(replica, 4)
        # Keep submitting while the transition is in flight.
        ctx.sim.schedule(0.05, lambda: replica.submit(sampler.sample(ctx.sim.now)))
        ctx.sim.run_until_idle()
        assert len(completed) == 5

    def test_noop_refactor_rejected(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert not executor.refactor(replica, 2)

    def test_concurrent_refactor_rejected(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        assert not executor.refactor(replica, 4)
        assert executor.refactoring(replica)

    def test_refactor_of_inactive_replica_rejected(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        replica.drain()
        assert not executor.refactor(replica, 4)

    def test_released_mid_transition_cleans_reservations(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        replica.on_released = lambda r: [
            ctx.allocator.release(s.reservation)
            for s in r.stages
            if not s.reservation.released
        ]
        assert executor.refactor(replica, 4)
        replica.drain()  # released before the switch fires
        ctx.sim.run_until_idle()
        # Every reservation the transition created must have been released.
        live_models = {r.model for r in ctx.allocator.live.values()}
        assert "LLAMA2-7B" not in live_models

    def test_drain_during_preparation_window_skips_the_swap(
        self, setup, llama_profile
    ):
        """Refactor-vs-drain race: a replica that starts draining while
        the transition prepares must not receive the new chain — the
        prepared reservations go straight back to the allocator."""
        ctx, ladder, metrics, executor = setup
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        replica.on_released = lambda r: [
            ctx.allocator.release(s.reservation)
            for s in r.stages
            if not s.reservation.released
        ]
        # A long-running batch keeps the replica DRAINING (not RELEASED)
        # across the whole preparation window.
        replica.submit(
            Request(
                rid=990,
                model="LLAMA2-7B",
                arrival_time=ctx.sim.now,
                prompt_tokens=2048,
                output_tokens=256,
                slo_latency=100.0,
            )
        )
        ctx.sim.run(until=0.05)  # batch dispatched, job in flight
        assert replica.inflight_jobs == 1
        assert executor.refactor(replica, 4)
        replica.drain()  # mid-preparation-window
        assert replica.state is ReplicaState.DRAINING
        ctx.sim.run_until_idle()
        # The in-flight request still completed (no drop)...
        assert len(completed) == 1
        # ...but no chain was swapped onto the dying replica...
        assert replica.reconfig_count == 0
        assert executor.transitions_completed == 0
        assert replica.plan.n_stages == 2
        # ...and nothing leaked: replica released, allocator clean.
        assert replica.state is ReplicaState.RELEASED
        live_models = {r.model for r in ctx.allocator.live.values()}
        assert "LLAMA2-7B" not in live_models
        assert replica.anomalies == []

    def test_reclaimed_target_gpu_aborts_the_swap(self, setup, llama_profile):
        """Refactor-vs-reclamation race: if the platform cordons a GPU
        holding a prepared stage during the preparation window, the swap
        must abort and give the reservations back — never serve from a
        reclaimed device."""
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        # Mid-window, the platform reclaims every GPU the transition
        # prepared on (cordon only; no drain reaches these reservations).
        prepared = [
            res
            for res in ctx.allocator.live.values()
            if res.gpu not in {s.gpu for s in replica.stages}
        ]
        assert prepared
        for res in prepared:
            res.gpu.cordoned = True
        ctx.sim.run_until_idle()
        assert executor.transitions_completed == 0
        assert replica.plan.n_stages == 2  # still on the old chain
        assert all(res.released for res in prepared)
        assert not any(
            s.reservation.gpu.cordoned for s in replica.stages
        )  # serving never moved onto a reclaimed device

    def test_abort_on_cordon_releases_prepared_memory_immediately(
        self, setup, llama_profile
    ):
        """The executor-level reclamation hook: when a victim GPU holding
        a *prepared* stage is cordoned, the transition aborts right then —
        the memory does not sit on the reclaimed GPU until ``_switch``."""
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        prepared = [
            res
            for res in ctx.allocator.live.values()
            if res.gpu not in {s.gpu for s in replica.stages}
        ]
        assert prepared
        victim = prepared[0].gpu
        victim.cordoned = True
        t_cordon = ctx.sim.now
        assert executor.abort_on_cordon(victim) == 1
        # Released at the cordon instant — zero simulated time elapsed.
        assert ctx.sim.now == t_cordon
        assert all(res.released for res in prepared)
        assert executor.transitions_aborted == 1
        assert not executor.refactoring(replica)
        assert metrics.events[-1].kind == "refactor_aborted"
        # The cancelled switch never fires; the replica keeps serving its
        # old chain, and a later refactor is allowed again.
        ctx.sim.run_until_idle()
        assert executor.transitions_completed == 0
        assert replica.plan.n_stages == 2
        assert replica.anomalies == []
        victim.cordoned = False
        assert executor.refactor(replica, 4)

    def test_abort_on_cordon_ignores_unrelated_gpus(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        used = {res.gpu for res in ctx.allocator.live.values()}
        bystander = next(g for g in ctx.cluster.gpus if g not in used)
        assert executor.abort_on_cordon(bystander) == 0
        assert executor.refactoring(replica)
        ctx.sim.run_until_idle()
        assert executor.transitions_completed == 1
        assert replica.plan.n_stages == 4

    def test_memory_degradation_halves_batch_instead_of_aborting(
        self, setup, llama_profile
    ):
        """Mirror of deploy's fallback: when the target rung cannot fit
        at the full batch's KV reservation, the transition degrades the
        batch rather than failing outright."""
        ctx, ladder, metrics, _ = setup
        executor = RefactoringExecutor(
            ctx,
            llama_profile,
            ladder,
            metrics,
            warm_cache=HostParamCache(),
            batch_cap=32,
        )
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        # Shape the cluster so every GPU can host any 4-stage piece at
        # batch 16 but none can take the largest piece at batch 32.
        plan4 = ladder.plan(4)
        kv = llama_profile.spec.kv_bytes_per_request
        mems32 = plan4.memory_per_stage(32, kv)
        mems16 = plan4.memory_per_stage(16, kv)
        assert max(mems32) > max(mems16)
        free = (max(mems16) + max(mems32)) / 2
        for gpu in ctx.cluster.gpus:
            gpu.background_mem = max(
                gpu.spec.memory - gpu.serving_mem - free, 0.0
            )
        assert executor.refactor(replica, 4)
        ctx.sim.run_until_idle()
        assert replica.plan.n_stages == 4
        assert executor.transitions_completed == 1
        assert replica.max_batch <= 16  # degraded below the 32 cap

    def test_refactor_event_includes_decision_latency(
        self, setup, llama_profile
    ):
        """Fig. 6-style accounting: the recorded transition time must be
        decision latency + preparation window + switch pause — what the
        executor actually scheduled."""
        ctx, ladder, metrics, _ = setup
        executor = RefactoringExecutor(
            ctx,
            llama_profile,
            ladder,
            metrics,
            warm_cache=HostParamCache(),
            decision_latency=5.0,
        )
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        start = ctx.sim.now
        assert executor.refactor(replica, 4)
        ctx.sim.run_until_idle()
        event = [e for e in metrics.events if e.kind == "refactor"][-1]
        assert event.init_time >= 5.0
        # The event time and the recorded duration agree end to end.
        assert event.init_time == pytest.approx(event.time - start)
