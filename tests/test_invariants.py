"""Lifecycle invariant auditor + seeded chaos harness (tier-1).

The chaos tests replay fixed seeds, so they are deterministic; the
auditor tests poison a known-clean run and assert each invariant fires.
"""

from __future__ import annotations

import pytest

from repro.cluster.allocator import AllocationError, GPUAllocator
from repro.cluster.cluster import make_small_cluster
from repro.core.context import ServingContext
from repro.core.flexpipe import FlexPipeSystem
from repro.models.zoo import LLAMA2_7B
from repro.pipeline.replica import ReplicaState
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.validation import (
    CHAOS_SYSTEMS,
    PAPER_FLEETS,
    ChaosCase,
    InvariantAuditor,
    InvariantViolationError,
    audit_seeds,
    paper_case,
    run_chaos_case,
)
from repro.workloads.arrivals import make_arrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.requests import LengthDistribution, RequestSampler

CHAOS_SEEDS = (0, 1, 2)


# ----------------------------------------------------------------------
# Chaos fuzz harness (fixed seeds, every system)
# ----------------------------------------------------------------------
class TestChaosHarness:
    @pytest.mark.parametrize("system", sorted(CHAOS_SYSTEMS))
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_seeded_interleavings_hold_all_invariants(self, system, seed):
        report = run_chaos_case(ChaosCase(system=system, seed=seed))
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.offered > 0

    def test_chaos_actually_exercises_the_lifecycle(self):
        """The harness must drive drains, failures and scale-outs — a
        quiet schedule would vacuously satisfy every invariant."""
        merged: dict[str, int] = {}
        for seed in range(4):
            report = run_chaos_case(ChaosCase(system="FlexPipe", seed=seed))
            for key, count in report.actions.items():
                merged[key] = merged.get(key, 0) + count
        assert merged.get("drain:ok", 0) > 0
        assert merged.get("fail:ok", 0) > 0
        assert merged.get("scale_out:ok", 0) > 0

    def test_refactor_interleavings_occur_on_flexpipe(self):
        """At least one seed must land a live refactor so the harness
        genuinely covers the inflight-refactoring paths."""
        assert any(
            run_chaos_case(ChaosCase(system="FlexPipe", seed=seed)).actions.get(
                "refactor:ok", 0
            )
            > 0
            for seed in range(6)
        )

    def test_audit_seeds_fans_out_and_reports(self):
        reports = audit_seeds(seeds=2, systems=["FlexPipe"], jobs=1)
        assert len(reports) == 2
        assert [r.case.seed for r in reports] == [0, 1]
        assert all(r.ok for r in reports)

    def test_audit_seeds_mixes_in_paper_cluster_cases(self):
        """Every 4th seed runs the multi-model paper-cluster shape, so
        ``repro audit`` covers the paper's fragmented multiplexing
        setting, not just one model on the small cluster."""
        reports = audit_seeds(seeds=4, systems=["FlexPipe"], jobs=1)
        kinds = [(r.case.cluster, r.case.models) for r in reports]
        assert kinds[:3] == [("small", ("LLAMA2-7B",))] * 3
        assert kinds[3][0] == "paper" and len(kinds[3][1]) >= 2
        assert all(r.ok for r in reports), [
            str(v) for r in reports for v in r.violations
        ]

    def test_audit_seeds_paper_mix_can_be_disabled(self):
        reports = audit_seeds(
            seeds=4, systems=["FlexPipe"], jobs=1, paper_every=None
        )
        assert all(r.case.cluster == "small" for r in reports)

    def test_case_kwargs_pass_through_survives_the_paper_mix(self):
        """``case_kwargs`` may pin any ChaosCase field — including ones
        the paper shape also sets — without crashing on paper seeds;
        explicit kwargs win over the fleet defaults."""
        reports = audit_seeds(
            seeds=4,
            systems=["FlexPipe"],
            jobs=1,
            case_kwargs={"model": "LLAMA2-7B", "duration": 10.0},
        )
        assert [r.case.model for r in reports] == ["LLAMA2-7B"] * 4
        assert all(r.case.duration == 10.0 for r in reports)
        assert reports[3].case.cluster == "paper"  # mix still applies
        # A pinned primary coinciding with a fleet member is deduped, not
        # doubled (ChaosCase rejects duplicate tenants outright).
        case = paper_case("FlexPipe", 11, model="LLAMA2-7B")
        assert case.models.count("LLAMA2-7B") == 1
        with pytest.raises(ValueError, match="repeats a tenant"):
            ChaosCase(model="LLAMA2-7B", extra_models=("LLAMA2-7B",))


class TestPaperClusterChaos:
    """Multi-model paper-cluster chaos: fixed seeds, tier-1 subset.

    Seeds 3 and 7 rotate through different :data:`PAPER_FLEETS`; the full
    grid runs in CI via ``repro audit``.
    """

    @pytest.mark.parametrize("system", ("FlexPipe", "DistServe"))
    @pytest.mark.parametrize("seed", (3, 7))
    def test_paper_multimodel_interleavings_hold_invariants(self, system, seed):
        case = paper_case(system, seed)
        assert case.cluster == "paper" and len(case.models) >= 2
        report = run_chaos_case(case)
        assert report.ok, "\n".join(str(v) for v in report.violations)
        assert report.offered > 0

    def test_fleets_rotate_and_cover_the_zoo_breadth(self):
        fleets = {paper_case("FlexPipe", s).models for s in range(6)}
        assert len(fleets) == len(PAPER_FLEETS)
        assert any("OPT-66B" in fleet for fleet in fleets)

    def test_multi_model_traffic_reaches_every_tenant(self):
        """Each co-resident tenant must actually offer and complete
        requests — a fleet where only the primary sees traffic would
        vacuously pass the invariants."""
        case = paper_case("FlexPipe", 3)
        report = run_chaos_case(case)
        assert report.ok
        assert set(report.offered_by_model) == set(case.models)
        for model in case.models:
            assert report.offered_by_model[model] > 0, model
            assert report.completed_by_model.get(model, 0) > 0, model

    def test_audit_seeds_rejects_unknown_system(self):
        with pytest.raises(KeyError):
            audit_seeds(seeds=1, systems=["NoSuchSystem"])

    def test_crash_inside_a_case_becomes_an_attributed_violation(
        self, monkeypatch
    ):
        """A regression that makes an interleaving raise must surface as
        a (system, seed, harness-crash) finding, not abort the audit."""
        import repro.validation.chaos as chaos_mod

        def boom(case):
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(chaos_mod, "_run_chaos_case", boom)
        report = chaos_mod.run_chaos_case(ChaosCase(system="FlexPipe", seed=3))
        assert not report.ok
        assert report.violations[0].invariant == "harness-crash"
        assert "synthetic crash" in report.violations[0].detail
        assert report.case.seed == 3


# ----------------------------------------------------------------------
# Auditor detection power (poisoned runs must be flagged)
# ----------------------------------------------------------------------
@pytest.fixture
def clean_run():
    """A short FlexPipe run, shut down and quiesced — audits clean."""
    sim = Simulator()
    streams = RandomStreams(7)
    cluster = make_small_cluster(sim)
    ctx = ServingContext.create(sim, cluster, streams)
    system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=1)
    system.start()
    sim.run(until=60.0)
    sampler = RequestSampler(
        LLAMA2_7B.name,
        streams.stream("requests"),
        prompt=LengthDistribution(median=128, sigma=0.6, lo=16, hi=1024),
        output=LengthDistribution(median=8, sigma=0.7, lo=1, hi=64),
    )
    generator = WorkloadGenerator(
        sim, make_arrivals(5.0, 1.0, streams.stream("arrivals")),
        sampler, system.submit, 10.0,
    )
    sim.run(until=90.0)
    system.shutdown()
    sim.run_until_idle()
    auditor = InvariantAuditor(system, generators=[generator])
    return sim, ctx, system, auditor


def invariants_of(violations):
    return {v.invariant for v in violations}


class TestAuditorDetection:
    def test_clean_run_audits_clean(self, clean_run):
        _, _, _, auditor = clean_run
        assert auditor.audit_quiesce() == []

    def test_assert_clean_raises_with_details(self, clean_run):
        _, ctx, _, auditor = clean_run
        gpu = ctx.cluster.gpus[0]
        ctx.allocator.reserve_on("leaky-model", gpu, 1024.0)
        with pytest.raises(InvariantViolationError) as err:
            auditor.assert_clean()
        assert "allocator-empty" in str(err.value)

    def test_leaked_reservation_flagged(self, clean_run):
        _, ctx, _, auditor = clean_run
        ctx.allocator.reserve_on("leaky-model", ctx.cluster.gpus[0], 2048.0)
        assert "allocator-empty" in invariants_of(auditor.audit_quiesce())

    def test_reservation_without_gpu_backing_flagged(self, clean_run):
        _, ctx, _, auditor = clean_run
        gpu = ctx.cluster.gpus[0]
        res = ctx.allocator.reserve_on("m", gpu, 4096.0)
        gpu.release(res.res_id)  # GPU side vanishes, allocator side stays
        assert "memory-accounting" in invariants_of(auditor.audit_quiesce())

    def test_lost_request_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        assert system.metrics.records, "fixture must have completed requests"
        system.metrics.records.pop()
        assert "request-conservation" in invariants_of(auditor.audit_quiesce())

    def test_double_completion_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        system.metrics.records.append(system.metrics.records[0])
        found = invariants_of(auditor.audit_quiesce())
        assert "completion-uniqueness" in found

    def test_router_mismatch_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        next(iter(system.routers.values())).submitted += 1
        assert "router-reconciliation" in invariants_of(auditor.audit_quiesce())

    def test_routed_but_never_accepted_flagged(self, clean_run):
        """A request lost between gateway and replica breaks the
        cross-layer routed == accepted reconciliation."""
        _, _, system, auditor = clean_run
        router = next(iter(system.routers.values()))
        router.submitted += 1
        router.routed += 1  # router books are internally consistent...
        found = invariants_of(auditor.audit_quiesce())
        assert "router-reconciliation" in found  # ...the cross-check isn't

    def test_replica_losing_accepted_request_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        system.factory.replicas[0].accepted_requests += 1
        assert "replica-conservation" in invariants_of(auditor.audit_quiesce())

    def test_illegal_transition_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        replica = system.factory.replicas[0]
        replica.state_history.append((0.0, ReplicaState.ACTIVE))
        found = invariants_of(auditor.audit_quiesce())
        assert "replica-state-machine" in found

    def test_replica_anomaly_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        system.factory.replicas[0].anomalies.append("synthetic anomaly")
        assert "replica-anomalies" in invariants_of(auditor.audit_quiesce())

    def test_zombie_router_entry_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        router = next(iter(system.routers.values()))
        router.replicas.append(system.factory.replicas[0])  # RELEASED by now
        assert "router-hygiene" in invariants_of(auditor.audit_quiesce())

    def test_phantom_chain_jobs_flagged(self, clean_run):
        _, _, system, auditor = clean_run
        replica = system.factory.replicas[0]
        replica._chain_jobs[12345] = 2
        assert "chain-accounting" in invariants_of(auditor.audit_quiesce())


# ----------------------------------------------------------------------
# Shutdown is a full teardown (the no-leak invariant's precondition)
# ----------------------------------------------------------------------
class TestShutdownTeardown:
    def test_shutdown_releases_every_reservation(self, clean_run):
        _, ctx, system, _ = clean_run
        assert ctx.allocator.live == {}
        assert all(g.stage_allocations == {} for g in ctx.cluster.gpus)
        assert all(
            r.state is ReplicaState.RELEASED for r in system.factory.replicas
        )

    def test_shutdown_drains_loading_replicas_without_late_activation(self):
        """A replica reclaimed mid-load must not activate when its load
        completes — the reservations are already back with the allocator."""
        sim = Simulator()
        streams = RandomStreams(11)
        cluster = make_small_cluster(sim)
        ctx = ServingContext.create(sim, cluster, streams)
        system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=1)
        system.start()  # replicas still LOADING
        assert any(
            r.state is ReplicaState.LOADING for r in system.factory.replicas
        )
        system.shutdown()
        sim.run_until_idle()  # in-flight loads complete after the drain
        assert ctx.allocator.live == {}
        for replica in system.factory.replicas:
            assert replica.state is ReplicaState.RELEASED
            assert replica.anomalies == []
            assert replica.activated_at is None  # never served


# ----------------------------------------------------------------------
# Allocator balance property (seeded reserve/release/resize sequences)
# ----------------------------------------------------------------------
class TestAllocatorBalanceProperty:
    def _assert_balanced(self, allocator, cluster):
        by_gpu: dict[str, float] = {}
        for res in allocator.live.values():
            assert not res.released
            by_gpu[res.gpu.gid] = by_gpu.get(res.gpu.gid, 0.0) + res.nbytes
        for gpu in cluster.gpus:
            expect = by_gpu.get(gpu.gid, 0.0)
            assert gpu.serving_mem == pytest.approx(expect, abs=1e-3)
            assert gpu.used_memory <= gpu.spec.memory + 1e-3
        assert allocator.total_reserved() == pytest.approx(
            sum(by_gpu.values()), abs=1e-3
        )

    @pytest.mark.parametrize("seed", (0, 1, 2, 3))
    def test_random_op_sequences_keep_exact_accounting(self, seed):
        sim = Simulator()
        cluster = make_small_cluster(sim, n_servers=3, gpus_per_server=2)
        allocator = GPUAllocator(cluster)
        rng = RandomStreams(seed).stream("allocator-fuzz")
        gib = 2**30
        live: list = []
        for _ in range(300):
            op = rng.choice(["reserve", "stages", "release", "resize"])
            try:
                if op == "reserve":
                    gpu = cluster.gpus[int(rng.integers(len(cluster.gpus)))]
                    model = f"m{int(rng.integers(3))}"
                    live.append(
                        allocator.reserve_on(
                            model,
                            gpu,
                            float(rng.uniform(1, 30)) * gib,
                            allow_same_model=bool(rng.random() < 0.5),
                        )
                    )
                elif op == "stages":
                    mems = [
                        float(rng.uniform(1, 20)) * gib
                        for _ in range(int(rng.integers(1, 4)))
                    ]
                    live.extend(
                        allocator.allocate_stages(f"m{int(rng.integers(3))}", mems)
                    )
                elif op == "release" and live:
                    allocator.release(live.pop(int(rng.integers(len(live)))))
                elif op == "resize" and live:
                    res = live[int(rng.integers(len(live)))]
                    allocator.resize(res, float(rng.uniform(1, 40)) * gib)
            except (AllocationError, ValueError):
                pass  # rejected ops must leave the books untouched
            self._assert_balanced(allocator, cluster)
        for res in list(live):
            allocator.release(res)
        assert allocator.live == {}
        assert all(g.serving_mem == 0.0 for g in cluster.gpus)

    def test_double_release_rejected_and_books_intact(self):
        sim = Simulator()
        cluster = make_small_cluster(sim, n_servers=1, gpus_per_server=2)
        allocator = GPUAllocator(cluster)
        res = allocator.reserve_on("m", cluster.gpus[0], 2**30)
        allocator.release(res)
        with pytest.raises(AllocationError):
            allocator.release(res)
        self._assert_balanced(allocator, cluster)


# ----------------------------------------------------------------------
# QoS shed accounting: multi-class chaos + detection power
# ----------------------------------------------------------------------
class TestMultiClassChaos:
    def test_paper_fleets_are_class_annotated(self):
        """Every paper-cluster chaos case is a multi-class fleet, so the
        audit exercises priority routing + per-tenant admission under
        reclaim/drain/refactor interleavings."""
        for seed in range(6):
            case = paper_case("FlexPipe", seed)
            classes = case.class_of
            assert set(classes) == set(case.models)
            assert "interactive" in classes.values()

    def test_case_kwargs_can_override_class_annotations(self):
        case = paper_case("FlexPipe", 3, slo_classes=())
        assert case.slo_classes == ()

    def test_annotations_validated(self):
        with pytest.raises(ValueError, match="not a tenant"):
            ChaosCase(slo_classes=(("BERT-21B", "batch"),))
        with pytest.raises(ValueError, match="SLO class"):
            ChaosCase(slo_classes=(("LLAMA2-7B", "gold"),))

    @pytest.mark.parametrize("system", ("FlexPipe", "Tetris"))
    def test_multiclass_small_cluster_case_holds_invariants(self, system):
        """A small-cluster two-tenant case with explicit classes: the
        shed-accounting invariant (admitted + shed == offered, per
        tenant; sheds exactly once) holds under chaos."""
        case = ChaosCase(
            system=system,
            seed=5,
            extra_models=("BERT-21B",),
            slo_classes=(
                ("LLAMA2-7B", "interactive"),
                ("BERT-21B", "batch"),
            ),
        )
        report = run_chaos_case(case)
        assert report.ok, "\n".join(str(v) for v in report.violations)
        for model in case.models:
            assert report.offered_by_model[model] > 0
        assert report.shed_by_model.keys() == report.offered_by_model.keys()


class TestShedAccountingDetection:
    """The new admission/shed accounting invariants must actually fire."""

    @pytest.fixture
    def gated_run(self, clean_run):
        from repro.core.admission import AdmissionGate

        sim, ctx, system, auditor = clean_run
        gate = AdmissionGate(lambda r: None)
        # Replay the generated population through the gate's books so the
        # aggregate triple matches ground truth.
        for generator in auditor.generators:
            for request in generator.requests:
                gate.stats.offered += 1
                gate.stats.admitted += 1
        auditor.gates = [gate]
        return sim, ctx, system, auditor, gate

    def test_balanced_gate_audits_clean(self, gated_run):
        *_, auditor, gate = gated_run
        assert auditor.audit_quiesce() == []

    def test_imbalanced_aggregate_flagged(self, gated_run):
        *_, auditor, gate = gated_run
        gate.stats.admitted -= 1
        assert "admission-accounting" in invariants_of(auditor.audit_quiesce())

    def test_imbalanced_tenant_triple_flagged(self, gated_run):
        from repro.qos import TenantAdmissionController, get_slo_class

        *_, auditor, gate = gated_run
        controller = TenantAdmissionController(lambda r: None)
        controller.register("m", get_slo_class("interactive"), [])
        controller._tenants["m"].stats.offered = 5  # 5 != 0 + 0
        auditor.gates = [gate, controller]
        assert "admission-accounting" in invariants_of(auditor.audit_quiesce())

    def test_unmarked_shed_flagged(self, gated_run):
        """A gate counting a shed with no request marked rejected means a
        shed vanished (or was double-counted) — exactly-once broken."""
        *_, auditor, gate = gated_run
        gate.stats.offered += 1
        gate.stats.rejected += 1
        assert "shed-accounting" in invariants_of(auditor.audit_quiesce())

    def test_shed_request_completing_flagged(self, gated_run):
        *_, system, auditor, gate = gated_run[1:]
        completed = next(
            r
            for g in auditor.generators
            for r in g.requests
            if r.completed
        )
        completed.rejected = True  # shed mark on a completed request
        gate.stats.admitted -= 1
        gate.stats.rejected += 1
        assert "shed-accounting" in invariants_of(auditor.audit_quiesce())
