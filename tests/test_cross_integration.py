"""Cross-module integration: new subsystems driving the live serving stack.

Each test wires several of the later-added components (trace replay,
admission control, plan serialization/diffing, paged KV, calibration)
through the same public API an application would use, catching interface
drift that unit tests cannot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import make_small_cluster
from repro.core.admission import AdmissionGate, SLOFeasiblePolicy
from repro.core.context import ServingContext
from repro.core.flexpipe import FlexPipeSystem
from repro.models.calibration import TABLE2_ROWS, fit_cost_model
from repro.models.costs import CostModel
from repro.models.profiler import Profiler
from repro.models.transformer import build_transformer
from repro.models.zoo import LLAMA2_7B, OPT_66B
from repro.partitioning.ladder import GranularityLadder
from repro.partitioning.serialize import diff_plans, plan_from_json, plan_to_json
from repro.pipeline.paged_kv import PagedKVCache, PagedKVConfig
from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workloads.azure import FunctionTrace, TraceReplayArrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.requests import RequestSampler


@pytest.fixture
def serving():
    sim = Simulator()
    streams = RandomStreams(seed=21)
    cluster = make_small_cluster(sim, n_servers=8, gpus_per_server=2)
    ctx = ServingContext.create(sim, cluster, streams)
    system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=2)
    system.start()
    sim.run(until=150.0)
    return sim, streams, system


class TestTraceReplayThroughSystem:
    def test_replayed_trace_is_fully_served(self, serving):
        sim, streams, system = serving
        counts = np.full(4, 30, dtype=np.int64)  # 2 req/s over 2 minutes
        trace = FunctionTrace("o", "app", "fn", "http", counts, 60.0)
        arrivals = TraceReplayArrivals(trace, streams.stream("replay"))
        generator = WorkloadGenerator(
            sim,
            arrivals,
            RequestSampler(LLAMA2_7B.name, streams.stream("req")),
            system.submit,
            duration=240.0,
        )
        sim.run(until=sim.now + 400.0)
        system.shutdown()
        assert generator.offered == trace.total_invocations
        assert all(r.completed for r in generator.requests)


class TestAdmissionInFrontOfSystem:
    def test_gate_composes_with_submit(self, serving):
        sim, streams, system = serving
        router = system.routers[LLAMA2_7B.name]
        policy = SLOFeasiblePolicy(
            lambda: router.waiting_count,
            lambda: 20.0,
            lambda r: 0.5,
        )
        gate = AdmissionGate(system.submit, policy)
        generator = WorkloadGenerator(
            sim,
            TraceReplayArrivals(
                FunctionTrace("o", "a", "f", "http", np.array([120]), 60.0),
                streams.stream("replay"),
            ),
            RequestSampler(LLAMA2_7B.name, streams.stream("req")),
            gate.submit,
            duration=60.0,
        )
        sim.run(until=sim.now + 200.0)
        system.shutdown()
        assert gate.stats.offered == 120
        assert gate.stats.admitted == system.metrics.offered
        admitted = [r for r in generator.requests if not r.rejected]
        assert all(r.completed for r in admitted)


class TestPlanRoundTripDrivesDiff:
    def test_serialized_plans_diff_like_originals(self, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4, 8))
        coarse, fine = ladder.plan(2), ladder.plan(8)
        coarse2 = plan_from_json(plan_to_json(coarse), llama_profile)
        fine2 = plan_from_json(plan_to_json(fine), llama_profile)
        original = diff_plans(coarse, fine)
        roundtrip = diff_plans(coarse2, fine2)
        assert roundtrip.kind == original.kind == "split"
        assert roundtrip.reused_gpus == original.reused_gpus
        assert roundtrip.total_load_bytes == pytest.approx(
            original.total_load_bytes
        )


class TestPagedKVSizedFromProfile:
    def test_stage_kv_pool_from_model_profile(self, opt_profile):
        """Size a paged pool exactly like a stage reservation would."""
        ladder = GranularityLadder(opt_profile, stage_counts=(4,))
        stage = ladder.plan(4).stages[0]
        per_token = stage.profile.kv_bytes_per_token
        assert per_token > 0
        pool_bytes = 8 * 2**30  # an 8 GiB KV slice of the stage reservation
        config = PagedKVConfig(
            n_blocks=int(pool_bytes / (16 * per_token)),
            block_tokens=16,
            bytes_per_token=per_token,
        )
        cache = PagedKVCache(config)
        cache.register(1, prompt_tokens=4096)
        assert cache.resident_bytes >= 4096 * per_token
        # One max-length context costs ~2.3 GiB of stage KV (576 KiB/token
        # on a 4-stage OPT-66B shard): the 8 GiB slice holds ~3 of them —
        # the same physics that caps Table 2's max batch.
        assert 0.1 < cache.utilization < 0.5
        assert cache.can_admit(4096) and cache.can_admit(2 * 4096)
        assert not cache.can_admit(3 * 4096)
        cache.check_invariants()


class TestCalibrationDrivesCostModel:
    def test_fitted_model_reproduces_table2_load_curve(self):
        report = fit_cost_model(list(TABLE2_ROWS))
        fitted = CostModel(report.config)
        for row in TABLE2_ROWS:
            assert fitted.cold_load_time(row.param_bytes) == pytest.approx(
                row.load_time, rel=0.01
            )

    def test_fitted_model_profiles_a_real_graph(self):
        report = fit_cost_model(list(TABLE2_ROWS))
        profile = Profiler(CostModel(report.config)).profile(
            OPT_66B, build_transformer(OPT_66B)
        )
        ladder = GranularityLadder(profile, stage_counts=(4, 8))
        assert ladder.plan(8).n_stages == 8
        assert ladder.plan(4).max_batch >= ladder.plan(8).max_batch / 4
