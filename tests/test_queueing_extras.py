"""Tests for Kingman, Erlang and pipeline-bubble queueing models.

These validate against closed forms (M/M/1 exactness, Erlang recurrences,
the GPipe bubble bound) plus monotonicity properties, since the serving
benches lean on these models for capacity decisions.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.bubbles import (
    StallModel,
    _gamma_sf,
    bubble_fraction,
    effective_throughput,
    microbatches_for_bubble,
)
from repro.queueing.erlang import (
    erlang_b,
    erlang_c,
    mms_mean_queue_length,
    mms_mean_wait,
    mms_wait_quantile,
    servers_for_wait,
)
from repro.queueing.kingman import GG1Station, capacity_for_wait, tandem_wait


class TestKingman:
    def test_mm1_exact(self):
        """Kingman is exact for M/M/1: W_q = rho/(mu - lambda)."""
        lam, mu = 4.0, 5.0
        station = GG1Station(lam, 1.0 / mu, cv_arrival=1.0, cv_service=1.0)
        assert station.mean_wait() == pytest.approx((lam / mu) / (mu - lam))

    def test_md1_half_of_mm1(self):
        """Deterministic service halves the M/M/1 wait (Pollaczek-Khinchine)."""
        lam, mu = 4.0, 5.0
        mm1 = GG1Station(lam, 1.0 / mu, 1.0, 1.0).mean_wait()
        md1 = GG1Station(lam, 1.0 / mu, 1.0, 0.0).mean_wait()
        assert md1 == pytest.approx(mm1 / 2.0)

    def test_unstable_station_infinite_wait(self):
        station = GG1Station(5.0, 0.25)
        assert not station.stable
        assert station.mean_wait() == math.inf
        assert station.mean_queue_length() == math.inf

    def test_sojourn_adds_service(self):
        station = GG1Station(1.0, 0.5)
        assert station.mean_sojourn() == pytest.approx(station.mean_wait() + 0.5)

    def test_queue_length_littles_law(self):
        station = GG1Station(2.0, 0.25)
        assert station.mean_queue_length() == pytest.approx(2.0 * station.mean_wait())

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            GG1Station(0.0, 1.0)
        with pytest.raises(ValueError):
            GG1Station(1.0, 0.0)
        with pytest.raises(ValueError):
            GG1Station(1.0, 1.0, cv_arrival=-0.1)

    def test_capacity_for_wait_inverts_kingman(self):
        lam, target = 8.0, 0.05
        mu = capacity_for_wait(lam, target, cv_arrival=1.5, cv_service=0.5)
        achieved = GG1Station(lam, 1.0 / mu, 1.5, 0.5).mean_wait()
        assert achieved == pytest.approx(target, rel=1e-6)

    def test_capacity_for_wait_validates(self):
        with pytest.raises(ValueError):
            capacity_for_wait(0.0, 1.0)
        with pytest.raises(ValueError):
            capacity_for_wait(1.0, 0.0)

    def test_tandem_sums_stations(self):
        stations = [GG1Station(1.0, 0.2), GG1Station(1.0, 0.4)]
        assert tandem_wait(stations) == pytest.approx(
            stations[0].mean_wait() + stations[1].mean_wait()
        )

    @given(
        lam=st.floats(min_value=0.1, max_value=5.0),
        cv=st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_wait_increases_with_variability(self, lam, cv):
        tau = 0.1  # keeps rho <= 0.5
        low = GG1Station(lam, tau, cv_arrival=cv, cv_service=0.5).mean_wait()
        high = GG1Station(lam, tau, cv_arrival=cv + 1.0, cv_service=0.5).mean_wait()
        assert high >= low


class TestErlang:
    def test_erlang_b_single_server(self):
        """B(1, a) = a / (1 + a)."""
        assert erlang_b(2.0, 1.0, 1) == pytest.approx(2.0 / 3.0)

    def test_erlang_b_two_servers_closed_form(self):
        """B(2, a) = a^2/2 / (1 + a + a^2/2)."""
        a = 1.5
        expected = (a**2 / 2) / (1 + a + a**2 / 2)
        assert erlang_b(a, 1.0, 2) == pytest.approx(expected)

    def test_erlang_c_single_server_is_rho(self):
        """For M/M/1, P(wait) = rho."""
        assert erlang_c(3.0, 4.0, 1) == pytest.approx(0.75)

    def test_erlang_c_overload_returns_one(self):
        assert erlang_c(10.0, 1.0, 4) == 1.0

    def test_mm1_wait_matches_closed_form(self):
        lam, mu = 3.0, 4.0
        expected = lam / (mu * (mu - lam))  # rho/(mu-lam)
        assert mms_mean_wait(lam, mu, 1) == pytest.approx(expected)

    def test_wait_decreases_with_servers(self):
        waits = [mms_mean_wait(8.0, 1.0, s) for s in range(9, 15)]
        assert all(a > b for a, b in zip(waits, waits[1:]))

    def test_queue_length_littles_law(self):
        lam, mu, s = 5.0, 1.0, 8
        assert mms_mean_queue_length(lam, mu, s) == pytest.approx(
            lam * mms_mean_wait(lam, mu, s)
        )

    def test_wait_quantile_zero_when_wait_unlikely(self):
        # Very lightly loaded: P(wait) < 1%, so the P50 of wait is 0.
        assert mms_wait_quantile(0.1, 1.0, 10, 0.5) == 0.0

    def test_wait_quantile_tail_formula(self):
        lam, mu, s, q = 6.0, 1.0, 8, 0.99
        c = erlang_c(lam, mu, s)
        expected = math.log(c / (1 - q)) / (s * mu - lam)
        assert mms_wait_quantile(lam, mu, s, q) == pytest.approx(expected)

    def test_wait_quantile_validates(self):
        with pytest.raises(ValueError, match="quantile"):
            mms_wait_quantile(1.0, 1.0, 2, 1.0)

    def test_servers_for_wait_minimal(self):
        lam, mu, target = 12.0, 1.0, 0.05
        s = servers_for_wait(lam, mu, target)
        assert mms_mean_wait(lam, mu, s) <= target
        assert s == 13 or mms_mean_wait(lam, mu, s - 1) > target

    def test_servers_for_wait_unreachable(self):
        with pytest.raises(ValueError, match="no server count"):
            servers_for_wait(10.0, 1.0, 1e-12, max_servers=11)

    def test_parameter_validation(self):
        for args in [(0.0, 1.0, 1), (1.0, 0.0, 1), (1.0, 1.0, 0)]:
            with pytest.raises(ValueError):
                erlang_c(*args)

    @given(
        offered=st.floats(min_value=0.1, max_value=20.0),
        servers=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_blocking_is_probability_and_decreases(self, offered, servers):
        b1 = erlang_b(offered, 1.0, servers)
        b2 = erlang_b(offered, 1.0, servers + 1)
        assert 0.0 <= b2 <= b1 <= 1.0


class TestBubbles:
    def test_gpipe_bound(self):
        assert bubble_fraction(4, 8) == pytest.approx(3 / 11)

    def test_single_stage_no_bubble(self):
        assert bubble_fraction(1, 1) == 0.0

    def test_more_microbatches_smaller_bubble(self):
        fractions = [bubble_fraction(8, m) for m in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(fractions, fractions[1:]))

    def test_microbatches_for_bubble_inverts(self):
        for stages in (2, 4, 16):
            m = microbatches_for_bubble(stages, 0.1)
            assert bubble_fraction(stages, m) <= 0.1
            if m > 1:
                assert bubble_fraction(stages, m - 1) > 0.1

    def test_microbatches_single_stage(self):
        assert microbatches_for_bubble(1, 0.5) == 1

    def test_effective_throughput_ideal_limit(self):
        """With many micro-batches throughput approaches 1/stage_time."""
        t = effective_throughput(4, 10_000, stage_time=0.01)
        assert t == pytest.approx(100.0, rel=0.01)

    def test_effective_throughput_counts_hops(self):
        with_hops = effective_throughput(4, 8, 0.01, hop_time=0.005)
        without = effective_throughput(4, 8, 0.01, hop_time=0.0)
        assert with_hops < without

    def test_validation(self):
        with pytest.raises(ValueError):
            bubble_fraction(0, 1)
        with pytest.raises(ValueError):
            microbatches_for_bubble(4, 1.5)
        with pytest.raises(ValueError):
            effective_throughput(4, 8, 0.0)


class TestStallModel:
    def make(self):
        return StallModel(n_stages=4, stage_time=0.05, arrival_rate=20.0)

    def test_exceedance_increases_with_cv(self):
        """Convex ordering: mean pipe-empty time per gap grows with CV."""
        model = self.make()
        excess = [model.expected_gap_exceedance(cv) for cv in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert all(a < b for a, b in zip(excess, excess[1:]))

    def test_exponential_exceedance_closed_form(self):
        """For cv=1 (Poisson), E[(X-t)+] = e^(-lambda t) / lambda."""
        model = self.make()
        expected = math.exp(-20.0 * model.drain_threshold) / 20.0
        assert model.expected_gap_exceedance(1.0) == pytest.approx(expected, rel=1e-6)

    def test_exponential_special_case(self):
        """cv=1 is a Poisson process: P(gap > t) = exp(-lambda t)."""
        model = self.make()
        expected = math.exp(-20.0 * model.drain_threshold)
        assert model.gap_exceed_probability(1.0) == pytest.approx(expected, rel=1e-6)

    def test_stall_fraction_bounded(self):
        model = self.make()
        for cv in (0.1, 1.0, 8.0):
            assert 0.0 <= model.stall_cycle_fraction(cv) <= 1.0

    def test_stall_fraction_superlinear_in_cv(self):
        """Fig. 3c's shape: stalls blow up as CV grows."""
        model = self.make()
        low = model.stall_cycle_fraction(1.0)
        high = model.stall_cycle_fraction(4.0)
        assert high > 5 * low

    def test_validation(self):
        with pytest.raises(ValueError):
            StallModel(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            self.make().gap_exceed_probability(0.0)


class TestGammaSF:
    def test_exponential_case(self):
        assert _gamma_sf(1.0, 2.0) == pytest.approx(math.exp(-2.0), rel=1e-9)

    def test_at_zero(self):
        assert _gamma_sf(3.0, 0.0) == 1.0

    def test_matches_scipy(self):
        from scipy.stats import gamma as scipy_gamma

        for shape in (0.25, 1.0, 2.5, 9.0):
            for x in (0.1, 1.0, 5.0, 20.0):
                assert _gamma_sf(shape, x) == pytest.approx(
                    float(scipy_gamma.sf(x, shape)), rel=1e-8, abs=1e-12
                )

    def test_monotone_decreasing_in_x(self):
        values = [_gamma_sf(2.0, x) for x in (0.5, 1.0, 2.0, 4.0, 8.0)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            _gamma_sf(-1.0, 1.0)
        with pytest.raises(ValueError):
            _gamma_sf(1.0, -1.0)
