"""Scenario-layer sharding: partitioner, determinism, merged reports.

The acceptance contract: ``--shards N`` results are a pure function of
the scenario (identical for every worker count N >= 1), every shard runs
the invariant auditor, and the merged fleet report conserves requests
across shards.  Streaming workload generation (retained-rejected mode,
lazy trace replay) rides the same PR and is covered here too.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.scenarios.driver import ScenarioCase, run_scenario_case
from repro.scenarios.library import SCENARIOS
from repro.scenarios.sharding import (
    MIN_SERVERS_PER_GROUP,
    ScenarioShardProgram,
    partition_scenario,
)
from repro.scenarios.spec import (
    ArrivalSegment,
    ModelScript,
    ScenarioEvent,
    ScenarioSpec,
)
from repro.simulation.engine import Simulator
from repro.workloads.arrivals import ReplayArrivals
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.requests import LengthDistribution, RequestSampler

DETERMINISM_SCENARIOS = ("paper-multi-burst", "gpu-contention", "trace-replay")


def canonical(report) -> str:
    """Byte-stable serialization of a report (the determinism witness)."""
    return json.dumps(
        dataclasses.asdict(report), sort_keys=True, default=repr
    )


def two_tenant_spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="shard-unit",
        models=(
            ModelScript(
                model="LLAMA2-7B",
                segments=(ArrivalSegment(duration=10.0, qps=8.0),),
            ),
            ModelScript(
                model="WHISPER-9B",
                segments=(ArrivalSegment(duration=10.0, qps=2.0),),
            ),
        ),
        cluster="paper",
        settle=30.0,
        drain=10.0,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


# ----------------------------------------------------------------------
# Partitioner units
# ----------------------------------------------------------------------
class TestPartitioner:
    def test_one_group_per_tenant(self):
        plan = partition_scenario(two_tenant_spec(), seed=3)
        assert plan.sharded
        assert [g.models for g in plan.groups] == [
            ("LLAMA2-7B",),
            ("WHISPER-9B",),
        ]

    def test_server_slices_disjoint_and_named(self):
        plan = partition_scenario(two_tenant_spec(), seed=0)
        seen: set[int] = set()
        for group in plan.groups:
            indices = set(group.server_indices)
            assert not indices & seen
            seen |= indices
        # Paper topology has 42 servers; every one is dealt to a group.
        assert len(seen) == 42

    def test_traffic_weighting_shapes_slices(self):
        # LLAMA2 offers 4x WHISPER's volume, so it must get the (strictly)
        # larger server share.
        plan = partition_scenario(two_tenant_spec(), seed=0)
        llama, whisper = plan.groups
        assert len(llama.server_indices) > len(whisper.server_indices)

    def test_pure_function_of_spec(self):
        a = partition_scenario(two_tenant_spec(), seed=5)
        b = partition_scenario(two_tenant_spec(), seed=5)
        assert a == b

    def test_seed_changes_shard_seeds_not_slices(self):
        a = partition_scenario(two_tenant_spec(), seed=1)
        b = partition_scenario(two_tenant_spec(), seed=2)
        assert [g.server_indices for g in a.groups] == [
            g.server_indices for g in b.groups
        ]
        assert [g.seed for g in a.groups] != [g.seed for g in b.groups]

    def test_targeted_events_follow_their_tenant(self):
        spec = two_tenant_spec(
            events=(
                ScenarioEvent(at=2.0, action="scale_out", model="WHISPER-9B"),
                ScenarioEvent(at=4.0, action="drain", model="LLAMA2-7B"),
            )
        )
        plan = partition_scenario(spec, seed=0)
        assert [e.model for e in plan.groups[0].spec.events] == ["LLAMA2-7B"]
        assert [e.model for e in plan.groups[1].spec.events] == ["WHISPER-9B"]

    def test_fleet_events_deal_round_robin(self):
        spec = two_tenant_spec(
            events=tuple(
                ScenarioEvent(at=float(i + 1), action="reclaim")
                for i in range(4)
            )
        )
        plan = partition_scenario(spec, seed=0)
        assert len(plan.groups[0].spec.events) == 2
        assert len(plan.groups[1].spec.events) == 2

    def test_admission_cap_split_covers_parent(self):
        spec = two_tenant_spec(admission_cap=101)
        plan = partition_scenario(spec, seed=0)
        caps = [g.spec.admission_cap for g in plan.groups]
        assert all(c > 0 for c in caps)
        assert sum(caps) >= 101

    def test_subspec_duration_padded_to_parent(self):
        spec = two_tenant_spec(
            events=(ScenarioEvent(at=25.0, action="reclaim"),)
        )
        # The event stretches the parent's traffic window past the
        # segments' 10 s; every sub-spec must share the padded window.
        plan = partition_scenario(spec, seed=0)
        for group in plan.groups:
            assert group.spec.duration == spec.duration
            assert group.spec.horizon == spec.horizon

    def test_qos_scenarios_fall_back(self):
        spec = two_tenant_spec(qos="on")
        plan = partition_scenario(spec, seed=0)
        assert not plan.sharded
        assert "qos" in plan.fallback
        assert plan.groups[0].models == ("LLAMA2-7B", "WHISPER-9B")

    def test_single_tenant_falls_back(self):
        spec = two_tenant_spec(models=(two_tenant_spec().models[0],))
        plan = partition_scenario(spec, seed=0)
        assert not plan.sharded
        assert "single-tenant" in plan.fallback

    def test_tiny_cluster_falls_back(self):
        # The small topology has 8 servers; 3 tenants would leave groups
        # below the MIN_SERVERS_PER_GROUP floor.
        models = tuple(
            ModelScript(
                model=m, segments=(ArrivalSegment(duration=10.0, qps=2.0),)
            )
            for m in ("LLAMA2-7B", "WHISPER-9B", "BERT-21B")
        )
        spec = two_tenant_spec(models=models, cluster="small")
        plan = partition_scenario(spec, seed=0)
        assert not plan.sharded
        assert "too small" in plan.fallback
        assert MIN_SERVERS_PER_GROUP * len(models) > 8

    def test_big_model_floor_respected(self):
        # OPT-66B (120 GB) needs 2 GPUs even at negligible traffic; its
        # slice must cover the floor despite a tiny weight.
        models = (
            ModelScript(
                model="LLAMA2-7B",
                segments=(ArrivalSegment(duration=60.0, qps=50.0),),
            ),
            ModelScript(
                model="OPT-66B",
                segments=(ArrivalSegment(duration=1.0, qps=0.1),),
            ),
        )
        plan = partition_scenario(two_tenant_spec(models=models), seed=0)
        from repro.cluster.cluster import server_placements

        gpus = {p.index: p.n_gpus for p in server_placements("paper")}
        opt_gpus = sum(gpus[i] for i in plan.groups[1].server_indices)
        assert opt_gpus >= 2


# ----------------------------------------------------------------------
# End-to-end determinism + merged-report sanity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", DETERMINISM_SCENARIOS)
def test_shard_count_invariance(name):
    """The acceptance gate: byte-identical reports at --shards 1/2/4."""
    spec = SCENARIOS[name].quick()
    blobs = {}
    report = None
    for workers in (1, 2, 4):
        report = run_scenario_case(ScenarioCase(spec, "FlexPipe", 0, workers))
        blobs[workers] = canonical(report)
    assert blobs[1] == blobs[2] == blobs[4]
    assert report.ok, [v.detail for v in report.violations]
    assert report.shards >= 1
    assert report.engine_events > 0


def test_merged_report_sanity():
    spec = SCENARIOS["paper-multi-burst"].quick()
    report = run_scenario_case(ScenarioCase(spec, "FlexPipe", 0, 2))
    assert report.shards == 3  # three tenants, three groups
    assert report.shard_fallback == ""
    # Cross-shard conservation: everything generated is accounted for.
    assert report.offered == report.completed + report.shed
    assert set(report.per_model) == set(spec.model_names)
    assert set(report.tenants) == set(spec.model_names)
    agg = report.aggregate
    assert agg.completed == sum(
        s.completed for s in report.per_model.values()
    )
    # The aggregate counts *admitted* work (sheds never reach a tenant).
    assert agg.offered == report.offered - report.shed
    assert 0.0 < agg.gpu_utilization <= 1.0
    assert agg.gpus_used >= 1
    assert agg.mean_latency > 0
    assert agg.latency_percentiles[99] >= agg.latency_percentiles[50]
    assert report.events  # the reclaim events fired somewhere


def test_fallback_case_still_runs_and_reports():
    spec = SCENARIOS["gpu-contention"].quick()
    report = run_scenario_case(ScenarioCase(spec, "FlexPipe", 0, 4))
    assert report.shards == 1
    assert report.shard_fallback != ""
    assert report.ok, [v.detail for v in report.violations]


def test_shard_program_runs_one_group():
    spec = SCENARIOS["trace-replay"].quick()
    plan = partition_scenario(spec, seed=0)
    assert plan.sharded
    program = ScenarioShardProgram(plan.groups[0], "FlexPipe")
    program.setup()
    program.advance(spec.horizon)
    piece = program.finish()
    assert piece.report.ok
    assert piece.engine_events == program.events_processed()
    assert piece.report.completed == len(piece.latencies)


# ----------------------------------------------------------------------
# Streaming workload generation
# ----------------------------------------------------------------------
class TestStreamingGenerator:
    def drive(self, retain):
        sim = Simulator()
        sampler = RequestSampler(
            "LLAMA2-7B",
            np.random.default_rng(11),
            prompt=LengthDistribution(median=64, sigma=0.5, lo=16, hi=256),
            output=LengthDistribution(median=4, sigma=0.5, lo=1, hi=32),
            slo_latency=5.0,
        )
        seen = []

        def sink(request):
            # Gate stand-in: every third request is shed synchronously.
            request.rejected = len(seen) % 3 == 0
            seen.append(request)

        generator = WorkloadGenerator(
            sim,
            ReplayArrivals([0.5 * i for i in range(1, 31)]),
            sampler,
            sink,
            duration=60.0,
            retain=retain,
        )
        sim.run_until_idle()
        return generator, seen

    def test_rejected_mode_counts_everything(self):
        generator, seen = self.drive("rejected")
        assert generator.offered == len(seen) == 30
        assert all(r.rejected for r in generator.requests)
        assert len(generator.requests) == 10

    def test_all_mode_is_historical_behaviour(self):
        generator, seen = self.drive("all")
        assert generator.requests == seen
        assert generator.offered == 30

    def test_observer_sees_final_rejected_mark(self):
        sim = Simulator()
        sampler = RequestSampler(
            "LLAMA2-7B",
            np.random.default_rng(2),
            prompt=LengthDistribution(median=64, sigma=0.5, lo=16, hi=256),
            output=LengthDistribution(median=4, sigma=0.5, lo=1, hi=32),
            slo_latency=5.0,
        )
        observed = []

        def sink(request):
            request.rejected = True

        WorkloadGenerator(
            sim,
            ReplayArrivals([1.0, 2.0]),
            sampler,
            sink,
            duration=10.0,
            retain="rejected",
            observer=lambda r: observed.append(r.rejected),
        )
        sim.run_until_idle()
        assert observed == [True, True]

    def test_unknown_retain_mode_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="retain"):
            WorkloadGenerator(
                sim,
                ReplayArrivals([1.0]),
                RequestSampler(
                    "LLAMA2-7B",
                    np.random.default_rng(0),
                    prompt=LengthDistribution(
                        median=64, sigma=0.5, lo=16, hi=256
                    ),
                    output=LengthDistribution(median=4, sigma=0.5, lo=1, hi=32),
                    slo_latency=5.0,
                ),
                lambda r: None,
                duration=10.0,
                retain="everything",
            )


class TestStreamingReplay:
    def test_stream_equals_sized_gaps(self):
        stamps = [0.3, 1.1, 1.9, 4.2, 4.2, 7.0]
        sized = ReplayArrivals(list(stamps))
        streamed = ReplayArrivals(iter(stamps))
        for _ in stamps:
            assert streamed.next_interarrival() == sized.next_interarrival()
        assert sized.next_interarrival() == float("inf")
        assert streamed.next_interarrival() == float("inf")

    def test_stream_never_materialises(self):
        def infinite():
            t = 0.0
            while True:
                t += 0.25
                yield t

        process = ReplayArrivals(infinite())
        for _ in range(10_000):
            assert process.next_interarrival() == 0.25
        assert process.timestamps is None  # nothing retained
        assert process.rate == pytest.approx(4.0)

    def test_streaming_cv_converges_to_empirical(self):
        rng = np.random.default_rng(9)
        gaps = rng.exponential(0.5, size=4000)
        stamps = np.cumsum(gaps)
        sized = ReplayArrivals(list(stamps))
        streamed = ReplayArrivals(iter(float(t) for t in stamps))
        for _ in range(len(stamps)):
            streamed.next_interarrival()
        assert streamed.cv == pytest.approx(sized.cv, rel=0.05)

    def test_negative_stamps_skipped_in_stream(self):
        process = ReplayArrivals(iter([-3.0, 1.0, -0.5, 2.0]))
        assert process.next_interarrival() == 1.0
        assert process.next_interarrival() == 1.0
        assert process.next_interarrival() == float("inf")
