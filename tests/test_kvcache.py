"""Tests for the Eq. 10 KV consistency protocol and validity-mask algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.pipeline.kvcache import (
    KVCacheState,
    ValidityMask,
    delta_sync,
    snapshot_transfer,
)


class TestValidityMask:
    def test_upto_builds_prefix_mask(self):
        mask = ValidityMask.upto(5)
        assert mask.count == 5
        assert mask.contains(0) and mask.contains(4)
        assert not mask.contains(5)

    def test_upto_zero_is_empty(self):
        assert ValidityMask.upto(0).count == 0

    def test_upto_negative_rejected(self):
        with pytest.raises(ValueError):
            ValidityMask.upto(-1)

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            ValidityMask(((3, 3),))  # empty range
        with pytest.raises(ValueError):
            ValidityMask(((0, 5), (3, 8)))  # overlapping
        with pytest.raises(ValueError):
            ValidityMask(((5, 8), (0, 2)))  # unsorted

    def test_union_merges_adjacent_ranges(self):
        a = ValidityMask(((0, 5),))
        b = ValidityMask(((5, 10),))
        assert a.union(b).ranges == ((0, 10),)

    def test_union_keeps_gaps(self):
        a = ValidityMask(((0, 3),))
        b = ValidityMask(((7, 9),))
        assert a.union(b).ranges == ((0, 3), (7, 9))

    def test_intersect_is_elementwise_and(self):
        a = ValidityMask(((0, 10),))
        b = ValidityMask(((5, 15),))
        assert a.intersect(b).ranges == ((5, 10),)

    def test_intersect_disjoint_is_empty(self):
        a = ValidityMask(((0, 3),))
        b = ValidityMask(((5, 8),))
        assert a.intersect(b).count == 0

    def test_invalid_before_finds_gaps(self):
        mask = ValidityMask(((0, 3), (6, 8)))
        gaps = mask.invalid_before(10)
        assert gaps.ranges == ((3, 6), (8, 10))

    def test_invalid_before_full_prefix(self):
        assert ValidityMask().invalid_before(4).ranges == ((0, 4),)

    def test_invalid_before_none_missing(self):
        assert ValidityMask.upto(10).invalid_before(10).count == 0


class TestKVCacheState:
    def test_append_extends_mask(self):
        state = KVCacheState(request_id=1, bytes_per_token=2.0)
        state.append_tokens(10)
        assert state.generated == 10
        assert state.is_consistent()
        assert state.bytes_total == 20.0

    def test_append_negative_rejected(self):
        state = KVCacheState(request_id=1, bytes_per_token=1.0)
        with pytest.raises(ValueError):
            state.append_tokens(-1)

    def test_stale_tokens_empty_when_consistent(self):
        state = KVCacheState(request_id=1, bytes_per_token=1.0)
        state.append_tokens(7)
        assert state.stale_tokens().count == 0


class TestMigrationProtocol:
    """Eq. 10: snapshot -> decode continues -> delta sync -> consistent."""

    def test_snapshot_copies_current_prefix(self):
        src = KVCacheState(request_id=3, bytes_per_token=4.0)
        src.append_tokens(100)
        dst = snapshot_transfer(src)
        assert dst.generated == 100
        assert dst.is_consistent()

    def test_decode_during_migration_makes_target_stale(self):
        src = KVCacheState(request_id=3, bytes_per_token=4.0)
        src.append_tokens(100)
        dst = snapshot_transfer(src)
        src.append_tokens(5)  # tokens generated during the async window
        dst.generated = src.generated
        assert dst.stale_tokens().count == 5

    def test_delta_sync_restores_consistency(self):
        src = KVCacheState(request_id=3, bytes_per_token=4.0)
        src.append_tokens(100)
        dst = snapshot_transfer(src)
        src.append_tokens(5)
        moved = delta_sync(src, dst)
        assert moved == 5 * 4.0
        assert dst.is_consistent()
        assert dst.generated == 105

    def test_delta_sync_cross_request_rejected(self):
        src = KVCacheState(request_id=1, bytes_per_token=1.0)
        dst = KVCacheState(request_id=2, bytes_per_token=1.0)
        with pytest.raises(ValueError):
            delta_sync(src, dst)

    def test_delta_sync_idempotent(self):
        src = KVCacheState(request_id=1, bytes_per_token=1.0)
        src.append_tokens(10)
        dst = snapshot_transfer(src)
        delta_sync(src, dst)
        assert delta_sync(src, dst) == 0.0


class TestMaskProperties:
    """Property-based checks of the Eq. 10 algebra."""

    ranges = st.lists(
        st.tuples(st.integers(0, 50), st.integers(1, 10)), min_size=0, max_size=5
    )

    @staticmethod
    def _build(pairs) -> ValidityMask:
        mask = ValidityMask()
        for start, width in pairs:
            mask = mask.union(ValidityMask(((start, start + width),)))
        return mask

    @given(a=ranges, b=ranges)
    @settings(max_examples=100, deadline=None)
    def test_union_is_commutative_and_superset(self, a, b):
        ma, mb = self._build(a), self._build(b)
        u1, u2 = ma.union(mb), mb.union(ma)
        assert u1.ranges == u2.ranges
        assert u1.count >= max(ma.count, mb.count)

    @given(a=ranges, b=ranges)
    @settings(max_examples=100, deadline=None)
    def test_intersect_is_subset_of_both(self, a, b):
        ma, mb = self._build(a), self._build(b)
        inter = ma.intersect(mb)
        assert inter.count <= min(ma.count, mb.count)
        for start, end in inter.ranges:
            for token in (start, end - 1):
                assert ma.contains(token) and mb.contains(token)

    @given(a=ranges, n=st.integers(0, 80))
    @settings(max_examples=100, deadline=None)
    def test_mask_and_complement_partition_prefix(self, a, n):
        mask = self._build(a)
        gaps = mask.invalid_before(n)
        clipped = mask.intersect(ValidityMask.upto(n) if n else ValidityMask())
        assert clipped.count + gaps.count == n

    @given(generated=st.integers(0, 200), extra=st.integers(0, 50))
    @settings(max_examples=100, deadline=None)
    def test_migration_protocol_always_converges(self, generated, extra):
        """Invariant 4 of DESIGN.md: after snapshot + delta sync the target
        covers exactly the generated tokens."""
        src = KVCacheState(request_id=1, bytes_per_token=1.0)
        src.append_tokens(generated)
        dst = snapshot_transfer(src)
        src.append_tokens(extra)
        delta_sync(src, dst)
        assert dst.is_consistent()
        assert dst.mask.count == generated + extra
