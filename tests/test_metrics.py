"""Tests for metric collection, latency stats, stall detection, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.collector import MetricsCollector, ScalingEvent
from repro.metrics.latency import LatencyBreakdown, percentile, percentiles
from repro.metrics.report import format_table, ratio_str
from repro.metrics.stalls import detect_stalls, median_recovery, recovery_times
from repro.workloads.requests import Request


def make_request(rid, arrival, latency, *, slo=5.0, queue=0.1, execute=0.5, comm=0.05):
    req = Request(
        rid=rid,
        model="m",
        arrival_time=arrival,
        prompt_tokens=128,
        output_tokens=8,
        slo_latency=slo,
    )
    req.completion_time = arrival + latency
    req.queue_time = queue
    req.exec_time = execute
    req.comm_time = comm
    req.prefill_done = arrival + min(latency, 0.2)
    return req


class TestLatencyStats:
    def test_percentile_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_percentiles_are_monotone(self):
        values = np.random.default_rng(0).exponential(1.0, 1000)
        ps = percentiles(values)
        ordered = [ps[q] for q in (50, 75, 90, 95, 99)]
        assert ordered == sorted(ordered)

    def test_breakdown_total(self):
        b = LatencyBreakdown(queue=1.0, execution=2.0, communication=0.5)
        assert b.total == 3.5
        assert "queue" in str(b)


class TestStallDetection:
    def test_flat_series_has_no_stalls(self):
        t = np.arange(100.0)
        lat = np.ones(100)
        assert detect_stalls(t, lat) == []

    def test_single_episode_detected_with_duration(self):
        t = np.arange(200.0)
        lat = np.ones(200)
        lat[80:120] = 5.0  # sustained stall
        episodes = detect_stalls(t, lat)
        assert len(episodes) == 1
        assert episodes[0].duration == pytest.approx(40.0, abs=6.0)

    def test_recovery_requires_return_below_threshold(self):
        t = np.arange(100.0)
        lat = np.ones(100)
        lat[50:] = 5.0  # never recovers
        episodes = detect_stalls(t, lat)
        assert len(episodes) == 1
        assert episodes[0].end == t[-1]

    def test_smoothing_ignores_single_outliers(self):
        t = np.arange(100.0)
        lat = np.ones(100)
        lat[50] = 50.0  # lone spike, not a stall episode
        assert detect_stalls(t, lat) == []

    def test_multiple_episodes(self):
        t = np.arange(300.0)
        lat = np.ones(300)
        lat[50:80] = 4.0
        lat[200:240] = 4.0
        episodes = detect_stalls(t, lat)
        assert len(episodes) == 2
        assert median_recovery(episodes) > 0

    def test_too_few_samples_returns_empty(self):
        assert detect_stalls([1.0, 2.0], [1.0, 2.0]) == []

    def test_empty_run(self):
        assert detect_stalls([], []) == []
        assert recovery_times([]) == []
        assert median_recovery([]) == 0.0

    def test_single_request_run(self):
        assert detect_stalls([1.0], [2.0]) == []

    def test_zero_baseline_returns_empty(self):
        # All-zero latencies give a zero P25 baseline; the thresholds
        # degenerate, so detection must bail rather than divide by it.
        t = [float(i) for i in range(20)]
        assert detect_stalls(t, [0.0] * 20) == []

    def test_poisoned_series_detection_power(self):
        """A deliberately injected stall window must be found (power
        check): one episode, covering the poisoned span."""
        n = 200
        t = [float(i) for i in range(n)]
        lat = [1.0] * n
        for i in range(100, 121):
            lat[i] = 5.0  # well past 1.5x the P25 baseline
        episodes = detect_stalls(t, lat)
        assert len(episodes) == 1
        episode = episodes[0]
        assert episode.start == pytest.approx(100.0, abs=3.0)
        assert episode.end == pytest.approx(121.0, abs=3.0)
        assert recovery_times(episodes)[0] > 0.0

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            detect_stalls([1.0], [1.0, 2.0])

    def test_recovery_times_list(self):
        t = np.arange(200.0)
        lat = np.ones(200)
        lat[60:90] = 5.0
        assert len(recovery_times(detect_stalls(t, lat))) == 1


class TestCollector:
    def test_goodput_counts_slo_met_only(self):
        collector = MetricsCollector("sys")
        for i in range(10):
            req = make_request(i, arrival=float(i), latency=2.0 if i < 7 else 9.0)
            collector.on_submit(req)
            collector.on_complete(req)
        summary = collector.summarize(10.0)
        assert summary.offered == 10
        assert summary.completed == 10
        assert summary.goodput == 7
        assert summary.goodput_rate == pytest.approx(0.7)

    def test_measure_from_filters_warmup(self):
        collector = MetricsCollector("sys")
        for i in range(10):
            req = make_request(i, arrival=float(i), latency=1.0)
            collector.on_submit(req)
            collector.on_complete(req)
        summary = collector.summarize(10.0, measure_from=5.0)
        assert summary.offered == 5
        assert summary.completed == 5

    def test_breakdown_means(self):
        collector = MetricsCollector("sys")
        req = make_request(0, 0.0, 1.0, queue=0.4, execute=0.5, comm=0.1)
        collector.on_submit(req)
        collector.on_complete(req)
        summary = collector.summarize(10.0)
        assert summary.breakdown.queue == pytest.approx(0.4)
        assert summary.breakdown.execution == pytest.approx(0.5)
        assert summary.breakdown.communication == pytest.approx(0.1)

    def test_utilization_computed_from_busy_seconds(self):
        collector = MetricsCollector("sys")
        summary = collector.summarize(10.0, gpu_busy_seconds=20.0, gpus_used=4)
        assert summary.gpu_utilization == pytest.approx(0.5)

    def test_event_aggregation(self):
        collector = MetricsCollector("sys")
        collector.on_event(ScalingEvent(1.0, "scale_out", warm=True, init_time=2.0, wait_time=1.0))
        collector.on_event(ScalingEvent(2.0, "scale_out", warm=False, init_time=4.0))
        collector.on_event(ScalingEvent(3.0, "refactor", init_time=0.5))
        summary = collector.summarize(10.0)
        assert summary.scale_out_count == 2
        assert summary.refactor_count == 1
        assert summary.warm_start_rate == pytest.approx(0.5)
        assert summary.mean_init_time == pytest.approx(3.0)
        assert summary.mean_alloc_wait == pytest.approx(0.5)

    def test_events_respect_measure_from(self):
        """Warm-up deploys must not pollute the measured epoch's event
        stats (regression: events ignored ``measure_from``)."""
        collector = MetricsCollector("sys")
        # Warm-up transients before the epoch at t=5: a warm scale-out
        # and a refactor that must both drop out of the summary.
        collector.on_event(
            ScalingEvent(1.0, "scale_out", warm=True, init_time=9.0, wait_time=9.0)
        )
        collector.on_event(ScalingEvent(2.0, "refactor"))
        # The measured window: one cold scale-out, one refactor.
        collector.on_event(
            ScalingEvent(6.0, "scale_out", warm=False, init_time=2.0, wait_time=1.0)
        )
        collector.on_event(ScalingEvent(7.0, "refactor"))
        summary = collector.summarize(10.0, measure_from=5.0)
        assert summary.scale_out_count == 1
        assert summary.refactor_count == 1
        assert summary.warm_start_rate == pytest.approx(0.0)
        assert summary.mean_init_time == pytest.approx(2.0)
        assert summary.mean_alloc_wait == pytest.approx(1.0)

    def test_queue_samples_respect_measure_from(self):
        collector = MetricsCollector("sys")
        collector.sample_queue(1.0, 100)
        collector.sample_queue(6.0, 10)
        summary = collector.summarize(10.0, measure_from=5.0)
        assert summary.mean_queue_length == pytest.approx(10.0)

    def test_empty_collector_summarises_safely(self):
        summary = MetricsCollector("sys").summarize(10.0)
        assert summary.offered == 0
        assert summary.goodput_rate == 0.0
        assert summary.mean_latency == 0.0


class TestReport:
    def test_format_table_aligns_columns(self):
        text = format_table(["name", "value"], [["a", 1], ["bbbb", 2.5]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_ratio_str_contains_ratio(self):
        assert "x2.00" in ratio_str(2.0, 1.0)
        assert "paper 0" in ratio_str(1.0, 0.0)
