"""Tests for the ``repro trace`` CLI subcommands."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.workloads.azure import TraceBundle


class TestTraceParser:
    def test_synth_args(self):
        args = build_parser().parse_args(
            ["trace", "synth", "out.csv", "--apps", "5", "--rate", "3.5"]
        )
        assert args.trace_command == "synth"
        assert args.output == "out.csv"
        assert args.apps == 5
        assert args.rate == 3.5

    def test_stats_args(self):
        args = build_parser().parse_args(["trace", "stats", "in.csv"])
        assert args.trace_command == "stats"
        assert args.trace_file == "in.csv"

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])


class TestTraceCommands:
    def test_synth_writes_readable_bundle(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        code = main(
            ["trace", "synth", str(out), "--apps", "4", "--days", "0.5"]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        bundle = TraceBundle.read_csv(out)
        assert len(bundle.app_ids()) == 4
        assert bundle.duration == pytest.approx(0.5 * 86_400.0)

    def test_synth_respects_rate(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(["trace", "synth", str(out), "--apps", "6", "--days", "1", "--rate", "8"])
        bundle = TraceBundle.read_csv(out)
        assert bundle.total_trace().mean_rate == pytest.approx(8.0, rel=0.35)

    def test_stats_reports_fig1_windows(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(["trace", "synth", str(out), "--apps", "4", "--days", "2"])
        capsys.readouterr()
        code = main(["trace", "stats", str(out)])
        assert code == 0
        text = capsys.readouterr().out
        assert "180s=" in text
        assert "12h=" in text
        assert "top app" in text

    def test_seed_changes_output(self, tmp_path):
        a, b = tmp_path / "a.csv", tmp_path / "b.csv"
        main(["--seed", "1", "trace", "synth", str(a), "--apps", "3", "--days", "0.25"])
        main(["--seed", "2", "trace", "synth", str(b), "--apps", "3", "--days", "0.25"])
        ta = TraceBundle.read_csv(a).total_trace().counts
        tb = TraceBundle.read_csv(b).total_trace().counts
        assert ta.tolist() != tb.tolist()
