"""Tests for arrival processes, CV estimators, traces, samplers, SLOs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation.engine import Simulator
from repro.simulation.randomness import RandomStreams
from repro.workloads.arrivals import (
    GammaArrivals,
    MMPPArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workloads.cv import SlidingWindowCV, count_cv, interarrival_cv
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.requests import LengthDistribution, RequestSampler
from repro.workloads.slo import SLO
from repro.workloads.traces import DiurnalTrace, DiurnalTraceConfig


@pytest.fixture
def rng():
    return RandomStreams(0).stream("test")


class TestArrivalProcesses:
    def test_poisson_mean_rate(self, rng):
        proc = PoissonArrivals(10.0, rng)
        ts = proc.timestamps(duration=200.0)
        assert len(ts) == pytest.approx(2000, rel=0.1)
        assert proc.cv == 1.0

    @pytest.mark.parametrize("cv", [0.1, 0.5, 1.0, 2.0, 4.0])
    def test_gamma_hits_target_cv(self, rng, cv):
        proc = GammaArrivals(20.0, cv, rng)
        ts = proc.timestamps(duration=500.0)
        measured = interarrival_cv(ts)
        assert measured == pytest.approx(cv, rel=0.15)

    def test_gamma_preserves_mean_rate(self, rng):
        proc = GammaArrivals(20.0, 4.0, rng)
        ts = proc.timestamps(duration=1000.0)
        assert len(ts) / 1000.0 == pytest.approx(20.0, rel=0.1)

    def test_gamma_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            GammaArrivals(0.0, 1.0, rng)
        with pytest.raises(ValueError):
            GammaArrivals(1.0, 0.0, rng)

    def test_factory_routes_cv_one_to_poisson(self, rng):
        assert isinstance(make_arrivals(1.0, 1.0, rng), PoissonArrivals)
        assert isinstance(make_arrivals(1.0, 2.0, rng), GammaArrivals)

    def test_mmpp_mean_rate_preserved(self, rng):
        proc = MMPPArrivals(20.0, rng, burst_factor=8.0, burst_fraction=0.1)
        ts = proc.timestamps(duration=2000.0)
        assert len(ts) / 2000.0 == pytest.approx(20.0, rel=0.15)

    def test_mmpp_is_burstier_than_poisson(self, rng):
        proc = MMPPArrivals(20.0, rng, burst_factor=10.0)
        ts = proc.timestamps(duration=1000.0)
        assert interarrival_cv(ts) > 1.3

    def test_mmpp_with_cv_solver(self, rng):
        for target in (2.0, 4.0):
            proc = MMPPArrivals.with_cv(20.0, target, rng)
            assert proc.cv == pytest.approx(target, rel=0.05)

    def test_mmpp_with_cv_rejects_low_cv(self, rng):
        with pytest.raises(ValueError):
            MMPPArrivals.with_cv(20.0, 0.8, rng)

    def test_mmpp_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            MMPPArrivals(1.0, rng, burst_factor=0.5)
        with pytest.raises(ValueError):
            MMPPArrivals(1.0, rng, burst_fraction=1.5)


class TestCVEstimators:
    def test_interarrival_cv_of_regular_arrivals_is_zero(self):
        assert interarrival_cv(np.arange(100.0)) == pytest.approx(0.0, abs=1e-9)

    def test_interarrival_cv_needs_three_samples(self):
        assert interarrival_cv([1.0, 2.0]) == 0.0

    def test_count_cv_window_size_matters(self, rng):
        """The Fig. 1 phenomenon: the same trace yields very different CVs
        at different window sizes."""
        trace = DiurnalTrace(rng, DiurnalTraceConfig(base_rate=3.0, burst_factor=12.0))
        ts = trace.generate(6 * 3600.0)
        short = count_cv(ts, window=180.0)
        long = count_cv(ts, window=3600.0)
        assert short != pytest.approx(long, rel=0.2)

    def test_count_cv_empty_is_zero(self):
        assert count_cv([], window=60.0) == 0.0

    def test_sliding_window_tracks_recent_cv(self):
        window = SlidingWindowCV(window=10.0)
        for t in np.arange(0.0, 10.0, 1.0):  # perfectly regular
            window.observe(float(t))
        assert window.value(now=10.0) == pytest.approx(0.0, abs=1e-9)

    def test_sliding_window_evicts_old_samples(self):
        window = SlidingWindowCV(window=5.0)
        window.observe(0.0)
        window.observe(1.0)
        assert window.count(now=100.0) == 0

    def test_sliding_window_rejects_out_of_order(self):
        window = SlidingWindowCV()
        window.observe(5.0)
        with pytest.raises(ValueError):
            window.observe(1.0)

    def test_sliding_window_rate(self):
        window = SlidingWindowCV(window=10.0)
        for t in np.arange(0.0, 10.0, 0.5):
            window.observe(float(t))
        assert window.arrival_rate(now=10.0) == pytest.approx(2.0, rel=0.1)

    def test_sliding_window_needs_min_samples(self):
        window = SlidingWindowCV(min_samples=5)
        for t in (0.0, 1.0, 2.0):
            window.observe(t)
        assert window.value(now=3.0) == 0.0


class TestRequestSampler:
    def test_lengths_respect_bounds(self, rng):
        sampler = RequestSampler(
            "m",
            rng,
            prompt=LengthDistribution(median=100, sigma=1.0, lo=10, hi=200),
            output=LengthDistribution(median=8, sigma=1.0, lo=1, hi=32),
        )
        for _ in range(500):
            req = sampler.sample(0.0)
            assert 10 <= req.prompt_tokens <= 200
            assert 1 <= req.output_tokens <= 32

    def test_request_ids_unique_and_increasing(self, rng):
        sampler = RequestSampler("m", rng)
        ids = [sampler.sample(0.0).rid for _ in range(10)]
        assert ids == sorted(set(ids))

    def test_slo_fields_propagate(self, rng):
        sampler = RequestSampler("m", rng, slo_latency=3.0)
        req = sampler.sample(5.0)
        assert req.slo_latency == 3.0
        assert req.arrival_time == 5.0
        assert req.model == "m"

    def test_latency_properties_before_completion(self, rng):
        req = RequestSampler("m", rng).sample(0.0)
        assert req.latency is None
        assert not req.slo_met
        assert not req.completed

    def test_slo_met_after_fast_completion(self, rng):
        req = RequestSampler("m", rng, slo_latency=10.0).sample(0.0)
        req.completion_time = 2.0
        assert req.slo_met


class TestSLO:
    def test_met_boundary(self):
        slo = SLO(latency_target=2.0)
        assert slo.met(2.0)
        assert not slo.met(2.0001)
        assert not slo.met(None)

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            SLO(latency_target=0.0)


class TestWorkloadGenerator:
    def test_generates_for_duration_only(self):
        sim = Simulator()
        rng = RandomStreams(0).stream("a")
        received = []
        gen = WorkloadGenerator(
            sim,
            PoissonArrivals(10.0, rng),
            RequestSampler("m", RandomStreams(0).stream("r")),
            received.append,
            duration=50.0,
        )
        sim.run()
        assert gen.offered == len(received)
        assert gen.offered == pytest.approx(500, rel=0.15)
        assert all(r.arrival_time < 50.0 for r in received)

    def test_deterministic_across_same_seed(self):
        def run(seed):
            sim = Simulator()
            streams = RandomStreams(seed)
            out = []
            WorkloadGenerator(
                sim,
                PoissonArrivals(5.0, streams.stream("arrivals")),
                RequestSampler("m", streams.stream("requests")),
                out.append,
                duration=30.0,
            )
            sim.run()
            return [(r.arrival_time, r.prompt_tokens, r.output_tokens) for r in out]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_invalid_duration_rejected(self):
        sim = Simulator()
        rng = RandomStreams(0).stream("a")
        with pytest.raises(ValueError):
            WorkloadGenerator(
                sim,
                PoissonArrivals(1.0, rng),
                RequestSampler("m", rng),
                lambda r: None,
                duration=0.0,
            )


class TestDiurnalTrace:
    def test_trace_spans_duration(self, rng):
        ts = DiurnalTrace(rng).generate(3600.0)
        assert ts.size > 0
        assert ts.max() < 3600.0
        assert np.all(np.diff(ts) >= 0)

    def test_burst_factor_raises_short_window_cv(self, rng):
        calm = DiurnalTrace(
            RandomStreams(1).stream("t"),
            DiurnalTraceConfig(burst_rate_per_hour=0.0),
        ).generate(4 * 3600.0)
        bursty = DiurnalTrace(
            RandomStreams(1).stream("t"),
            DiurnalTraceConfig(burst_rate_per_hour=6.0, burst_factor=15.0),
        ).generate(4 * 3600.0)
        assert count_cv(bursty, 180.0) > count_cv(calm, 180.0)
