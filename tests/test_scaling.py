"""Tests for warm cache, affinity, Eq. 11/12 decisions, coordinator, autoscaler."""

from __future__ import annotations

import pytest

from repro.cluster.hrg import HierarchicalResourceGraph
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.batching import BatcherConfig
from repro.pipeline.replica import PipelineReplica
from repro.scaling.affinity import AffinityScheduler, AffinityWeights
from repro.scaling.coordinator import ScalingCoordinator
from repro.scaling.decision import scaling_granularity, slo_feasible_stages
from repro.scaling.warm_cache import HostParamCache
from repro.transfer.links import GB


class TestHostParamCache:
    def test_put_then_full_coverage(self, small_cluster, llama_profile):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        n = len(llama_profile.graph)
        nbytes = llama_profile.graph.param_bytes(0, n // 2)
        assert cache.put(server, "LLAMA2-7B", 0, n // 2, nbytes, now=0.0)
        covered = cache.coverage(server, llama_profile, 0, n // 2)
        assert covered == pytest.approx(nbytes)

    def test_partial_overlap_coverage(self, small_cluster, llama_profile):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        n = len(llama_profile.graph)
        cache.put(server, "LLAMA2-7B", 0, n // 2, llama_profile.graph.param_bytes(0, n // 2), 0.0)
        # Ask for a range that half-overlaps the cached entry.
        covered = cache.coverage(server, llama_profile, n // 4, 3 * n // 4)
        expected = llama_profile.graph.param_bytes(n // 4, n // 2)
        assert covered == pytest.approx(expected)

    def test_merged_stage_warm_from_fine_pieces(self, small_cluster, llama_profile):
        """§5/§7 together: a merged stage reuses the pieces its fine-grained
        predecessors cached."""
        cache = HostParamCache()
        server = small_cluster.servers[0]
        n = len(llama_profile.graph)
        quarter = n // 4
        for i in range(4):
            lo, hi = i * quarter, (i + 1) * quarter
            cache.put(server, "LLAMA2-7B", lo, hi, llama_profile.graph.param_bytes(lo, hi), 0.0)
        covered = cache.coverage(server, llama_profile, 0, 4 * quarter)
        assert covered == pytest.approx(llama_profile.graph.param_bytes(0, 4 * quarter))

    def test_wrong_model_not_covered(self, small_cluster, llama_profile, opt_profile):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        cache.put(server, "OPT-66B", 0, 10, GB, 0.0)
        assert cache.coverage(server, llama_profile, 0, 10) == 0.0

    def test_lru_eviction_respects_host_memory(self, small_cluster, llama_profile):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        server.host_memory = 10 * GB
        assert cache.put(server, "LLAMA2-7B", 0, 5, 6 * GB, now=0.0)
        assert cache.put(server, "LLAMA2-7B", 5, 10, 6 * GB, now=1.0)  # evicts first
        assert cache.entry_count(server) == 1
        assert cache.coverage(server, llama_profile, 0, 5) == 0.0

    def test_oversized_entry_rejected(self, small_cluster):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        assert not cache.put(server, "m", 0, 1, 10_000 * GB, now=0.0)

    def test_covered_entry_refreshes_not_duplicates(self, small_cluster):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        cache.put(server, "m", 0, 10, GB, now=0.0)
        cache.put(server, "m", 2, 8, 0.5 * GB, now=1.0)  # already covered
        assert cache.entry_count(server) == 1


class TestAffinity:
    def test_recent_host_ranks_first(self, small_cluster):
        sched = AffinityScheduler()
        warm, cold = small_cluster.servers[0], small_cluster.servers[1]
        sched.record_placement("m", warm, now=0.0)
        ranked = sched.rank("m", [cold, warm], now=1.0)
        assert ranked[0] is warm

    def test_temporal_decay_erodes_affinity(self, small_cluster):
        sched = AffinityScheduler(AffinityWeights(decay=1.0))
        server = small_cluster.servers[0]
        sched.record_placement("m", server, now=0.0)
        fresh = sched.score("m", server, now=0.1)
        stale = sched.score("m", server, now=50.0)
        assert stale < fresh

    def test_gpu_availability_term(self, small_cluster):
        sched = AffinityScheduler()
        roomy, tight = small_cluster.servers[0], small_cluster.servers[1]
        for gpu in tight.gpus:
            gpu.reserve("bg", 79.5 * GB)
        assert sched.score("m", roomy, 0.0, min_free_bytes=GB) > sched.score(
            "m", tight, 0.0, min_free_bytes=GB
        )

    def test_unknown_server_scores_on_availability_only(self, small_cluster):
        sched = AffinityScheduler(AffinityWeights(w_g=0.0))
        assert sched.score("m", small_cluster.servers[0], now=0.0) == 0.0


class TestScalingDecisions:
    def test_eq11_calm_system_scales_coarse(self):
        assert scaling_granularity(cv=0.2, queue_length=0) <= 2

    def test_eq11_bursty_congested_scales_fine(self):
        m = scaling_granularity(cv=4.0, queue_length=512)
        assert m >= 24  # near G_max

    def test_eq11_monotone_in_pressure(self):
        values = [
            scaling_granularity(cv, q)
            for cv, q in [(0.5, 10), (1.0, 60), (2.0, 150), (4.0, 400)]
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_eq11_invalid_gmax(self):
        with pytest.raises(ValueError):
            scaling_granularity(1.0, 1, g_max=0)

    def test_eq12_backlog_drives_units(self):
        # 100 queued, 5 req/s per unit, 10 s budget after 2 s init:
        # each unit clears 50 requests in the budget -> 2 units.
        assert slo_feasible_stages(12.0, 2.0, 5.0, 100) == 2
        # Halving the budget doubles the requirement.
        assert slo_feasible_stages(7.0, 2.0, 5.0, 100) == 4

    def test_eq12_no_backlog_no_expansion(self):
        assert slo_feasible_stages(10.0, 1.0, 5.0, 0) == 0

    def test_eq12_unmeetable_returns_sentinel(self):
        assert slo_feasible_stages(5.0, 6.0, 5.0, 10) == 10**6

    def test_eq12_rejects_zero_throughput(self):
        with pytest.raises(ValueError):
            slo_feasible_stages(10.0, 1.0, 0.0, 10)


class TestCoordinator:
    def test_scorer_penalises_contended_servers(self, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        coordinator = ScalingCoordinator(hrg, AffinityScheduler())
        busy_server = small_cluster.servers[0]
        for _ in range(5):
            hrg.register_scaling_event(busy_server, now=0.0)
        scorer = coordinator.scorer("m", now=0.0)
        busy_gpu = busy_server.gpus[0]
        quiet_gpu = small_cluster.servers[-1].gpus[0]
        assert scorer(quiet_gpu) > scorer(busy_gpu)

    def test_scorer_prefers_warm_servers(self, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        affinity = AffinityScheduler()
        coordinator = ScalingCoordinator(hrg, affinity)
        warm_server = small_cluster.servers[0]
        affinity.record_placement("m", warm_server, now=0.0)
        scorer = coordinator.scorer("m", now=0.1)
        assert scorer(warm_server.gpus[0]) > scorer(small_cluster.servers[-1].gpus[0])

    def test_isolation_penalty_under_bursty_cv(self, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        coordinator = ScalingCoordinator(hrg, AffinityScheduler(), cv_fn=lambda: 4.0)
        shared = small_cluster.gpus[0]
        shared.reserve("x", GB, model="other")
        scorer = coordinator.scorer("m", now=0.0)
        assert scorer(small_cluster.gpus[1]) > scorer(shared)

    def test_ablation_flags_disable_terms(self, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        affinity = AffinityScheduler()
        coordinator = ScalingCoordinator(
            hrg, affinity, use_hrg=False, use_affinity=False
        )
        affinity.record_placement("m", small_cluster.servers[0], now=0.0)
        hrg.register_scaling_event(small_cluster.servers[1], now=0.0)
        scorer = coordinator.scorer("m", now=0.0)
        assert scorer(small_cluster.servers[0].gpus[0]) == scorer(
            small_cluster.servers[1].gpus[0]
        )

    def test_record_scaling_touches_each_server_once(self, small_cluster):
        hrg = HierarchicalResourceGraph(small_cluster)
        coordinator = ScalingCoordinator(hrg, AffinityScheduler())
        server = small_cluster.servers[0]
        coordinator.record_scaling("m", list(server.gpus), now=0.0)
        assert hrg.events_registered == 1


class TestAutoscalerEffectiveCapacity:
    """The capacity estimate must price in per-replica *effective* batch:
    a degraded fleet (halved batches under fragmentation) used to be
    valued at ``plan.max_batch``, suppressing burst scale-outs exactly
    when capacity was most impaired (ROADMAP open item)."""

    def _make_scaler(self, ctx, llama_profile, router):
        from types import SimpleNamespace

        from repro.metrics.collector import MetricsCollector
        from repro.pipeline.replica import ReplicaState
        from repro.refactoring.monitor import WorkloadMonitor
        from repro.scaling.autoscaler import Autoscaler, AutoscalerConfig

        # 2-stage rung: a GPU hosts at most one stage of a given model, so
        # the small cluster fits several replicas with room to spare.
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        plan = ladder.plan(2)
        deployed = []

        def deploy(profile, p, *, wait_time=0.0):
            # Record the scale-out; no real allocation (the test's fleet
            # should be the only occupant of the small cluster).
            deployed.append(p)
            return SimpleNamespace(state=ReplicaState.LOADING)

        scaler = Autoscaler(
            ctx.sim,
            router,
            WorkloadMonitor(),
            llama_profile,
            MetricsCollector("test"),
            deploy,
            lambda r: None,
            lambda cv, queue: plan,
            AutoscalerConfig(max_replicas=16),
        )
        return scaler, plan, deployed

    def _replica(self, ctx, profile, plan, batch):
        mems = plan.memory_per_stage(1, profile.spec.kv_bytes_per_request)
        reservations = ctx.allocator.allocate_stages(profile.spec.name, mems)
        return PipelineReplica(
            ctx.sim,
            profile,
            plan,
            reservations,
            batcher_config=BatcherConfig(max_batch=batch, max_wait=0.01),
            on_request_complete=lambda r: None,
        )

    def test_degraded_replica_valued_below_plan_estimate(self, ctx, llama_profile):
        from repro.pipeline.router import ModelRouter

        router = ModelRouter(ctx.sim, "LLAMA2-7B")
        scaler, plan, _ = self._make_scaler(ctx, llama_profile, router)
        healthy = self._replica(ctx, llama_profile, plan, plan.max_batch)
        degraded = self._replica(
            ctx, llama_profile, plan, max(plan.max_batch // 4, 1)
        )
        assert scaler.replica_capacity(healthy) == scaler.replica_throughput(plan)
        assert scaler.replica_capacity(degraded) < scaler.replica_capacity(healthy)

    def test_degraded_fleet_triggers_burst_scale_out(self, ctx, llama_profile):
        """The same backlog that a healthy fleet absorbs must trigger a
        scale-out once the fleet is degraded — with the old plan-based
        estimate both cases looked identical and neither scaled."""
        from repro.pipeline.router import ModelRouter

        outcomes = {}
        for label, batch_of in (
            ("healthy", lambda plan: plan.max_batch),
            ("degraded", lambda plan: max(plan.max_batch // 8, 1)),
        ):
            router = ModelRouter(ctx.sim, "LLAMA2-7B")
            scaler, plan, deployed = self._make_scaler(ctx, llama_profile, router)
            for _ in range(2):
                replica = self._replica(ctx, llama_profile, plan, batch_of(plan))
                replica.activate()
                router.add(replica)
            cfg = scaler.config
            capacity = {
                "healthy": 2 * scaler.replica_throughput(plan),
                "degraded": 2
                * scaler.replica_throughput(plan, batch=max(plan.max_batch // 8, 1)),
            }
            # A backlog between the two burst thresholds: above the
            # degraded fleet's clearing capacity, below the healthy one's.
            lo = cfg.queue_factor * max(capacity["degraded"] * cfg.interval, 1.0)
            hi = cfg.queue_factor * max(capacity["healthy"] * cfg.interval, 1.0)
            assert lo < hi, "degraded fleet must have lower capacity"
            queue = int(lo) + 1
            assert queue <= hi
            router.pending.extend(object() for _ in range(queue))
            scaler.tick()
            outcomes[label] = len(deployed)
        assert outcomes["healthy"] == 0
        assert outcomes["degraded"] >= 1


class TestAutoscalerShareCap:
    """Scale-out desire is clamped to the tenant's share-cap headroom, so
    a capped tenant never churns the allocator with deploys the cap is
    guaranteed to refuse (QoS resource arbitration)."""

    def _make_scaler(self, ctx, llama_profile, min_replicas=4):
        from types import SimpleNamespace

        from repro.metrics.collector import MetricsCollector
        from repro.pipeline.replica import ReplicaState
        from repro.pipeline.router import ModelRouter
        from repro.refactoring.monitor import WorkloadMonitor
        from repro.scaling.autoscaler import Autoscaler, AutoscalerConfig

        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        plan = ladder.plan(2)
        deployed = []

        def deploy(profile, p, *, wait_time=0.0):
            deployed.append(p)
            return SimpleNamespace(state=ReplicaState.LOADING)

        scaler = Autoscaler(
            ctx.sim,
            ModelRouter(ctx.sim, "LLAMA2-7B"),
            WorkloadMonitor(),
            llama_profile,
            MetricsCollector("test"),
            deploy,
            lambda r: None,
            lambda cv, queue: plan,
            AutoscalerConfig(min_replicas=min_replicas, max_replicas=16),
        )
        return scaler, plan, deployed

    def _replica_bytes(self, scaler, plan):
        # The clamp sizes replicas at the degradation floor batch — the
        # smallest deploy the factory would actually accept.
        from repro.cluster.allocator import DEGRADE_FLOOR

        batch = max(min(plan.max_batch, DEGRADE_FLOOR), 1)
        return sum(
            plan.memory_per_stage(
                batch, scaler.profile.spec.kv_bytes_per_request
            )
        )

    def test_scale_out_clamped_to_headroom(self, ctx, llama_profile):
        scaler, plan, deployed = self._make_scaler(ctx, llama_profile)
        scaler.share_headroom = (
            lambda: 2.5 * self._replica_bytes(scaler, plan)
        )
        scaler.tick()  # wants min_replicas=4, headroom hosts only 2
        assert len(deployed) == 2

    def test_uncapped_hook_changes_nothing(self, ctx, llama_profile):
        import math

        scaler, _, deployed = self._make_scaler(ctx, llama_profile)
        scaler.share_headroom = lambda: math.inf
        scaler.tick()
        assert len(deployed) == 4

    def test_default_behaviour_without_hook(self, ctx, llama_profile):
        scaler, _, deployed = self._make_scaler(ctx, llama_profile)
        scaler.tick()
        assert len(deployed) == 4

    def test_zero_headroom_never_forces_scale_in(self, ctx, llama_profile):
        """The cap blocks growth; it must not manufacture scale-in."""
        from repro.pipeline.replica import ReplicaState

        scaler, plan, deployed = self._make_scaler(ctx, llama_profile, min_replicas=1)
        from types import SimpleNamespace

        active = [
            SimpleNamespace(
                state=ReplicaState.ACTIVE,
                accepting=True,
                plan=plan,
                max_batch=plan.max_batch,
                queue_length=0,
                activated_at=0.0,
            )
            for _ in range(2)
        ]
        scaler.router.replicas.extend(active)
        scaler.share_headroom = lambda: 0.0
        released = []
        scaler.release_replica = released.append
        scaler.tick()
        assert deployed == []
        # desired fell to min_replicas, but scale-in still follows the
        # idle-window policy (first low tick never reclaims).
        assert released == []
