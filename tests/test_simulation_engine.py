"""Tests for the discrete-event engine, periodic processes, RNG streams."""

from __future__ import annotations

import pytest

from repro.simulation.engine import SimulationError
from repro.simulation.processes import PeriodicProcess
from repro.simulation.randomness import RandomStreams


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, sim):
        fired = []
        for tag in range(10):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_schedule_at_absolute_time(self, sim):
        seen = []
        sim.schedule_at(7.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [7.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_inf_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_events_scheduled_during_run_fire(self, sim):
        fired = []

        def first():
            sim.schedule(1.0, fired.append, "second")

        sim.schedule(1.0, first)
        sim.run()
        assert fired == ["second"]
        assert sim.now == 2.0


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == ["early"]
        assert sim.now == 5.0  # clock advanced to the horizon

    def test_run_until_then_continue(self, sim):
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["late"]

    def test_max_events_limits_processing(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), fired.append, i)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_stop_halts_the_loop(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, sim.stop)
        sim.schedule(3.0, fired.append, "b")
        sim.run()
        assert fired == ["a"]

    def test_reentrant_run_rejected(self, sim):
        def reenter():
            with pytest.raises(SimulationError):
                sim.run()

        sim.schedule(1.0, reenter)
        sim.run()

    def test_run_until_idle_raises_on_runaway(self, sim):
        def loop():
            sim.schedule(1.0, loop)

        sim.schedule(1.0, loop)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_events=100)

    def test_pending_count_skips_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1

    def test_peek_returns_next_live_event_time(self, sim):
        drop = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.peek() == 2.0

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestLiveEventCounter:
    """The O(1) bookkeeping behind pending_count / run_until_idle."""

    def _brute_count(self, sim):
        return sum(1 for e in sim._queue if not e.cancelled)

    def test_counter_tracks_schedule_fire_cancel(self, sim):
        events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.pending_count() == 10
        events[3].cancel()
        events[7].cancel()
        assert sim.pending_count() == 8 == self._brute_count(sim)
        sim.run(until=5.0)
        assert sim.pending_count() == self._brute_count(sim)
        sim.run()
        assert sim.pending_count() == 0

    def test_cancel_after_fire_does_not_corrupt_counter(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        event.cancel()  # already fired: must be a no-op on the counter
        event.cancel()
        assert sim.pending_count() == 1

    def test_cancel_heavy_workload_compacts_the_heap(self, sim):
        keepers = []
        for i in range(500):
            event = sim.schedule(float(i + 1), lambda: None)
            if i % 10 == 0:
                keepers.append(event)
            else:
                event.cancel()
        # Far more cancellations than live events: the heap must have been
        # rebuilt rather than carrying ~450 dead entries to their deadline.
        assert len(sim._queue) < 200
        assert sim.pending_count() == len(keepers)
        fired = []
        sim.schedule(1000.0, lambda: fired.append("sentinel"))
        sim.run()
        assert fired == ["sentinel"]
        assert sim.events_processed == len(keepers) + 1

    def test_order_preserved_across_compaction(self, sim):
        fired = []
        doomed = []
        for i in range(300):
            if i % 3 == 0:
                sim.schedule(float(i), fired.append, i)
            else:
                doomed.append(sim.schedule(float(i), lambda: None))
        for event in doomed:
            event.cancel()
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == 100

    def test_run_until_idle_uses_live_counter(self, sim):
        for i in range(50):
            sim.schedule(float(i + 1), lambda: None).cancel()
        sim.schedule(0.5, lambda: None)
        sim.run_until_idle()  # must not raise: only one live event existed
        assert sim.pending_count() == 0


class TestPeriodicProcess:
    def test_fires_every_interval(self, sim):
        ticks = []
        PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=5.5)
        assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_delay_zero_fires_immediately(self, sim):
        ticks = []
        PeriodicProcess(sim, 2.0, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=4.5)
        assert ticks == [0.0, 2.0, 4.0]

    def test_stop_halts_future_ticks(self, sim):
        ticks = []
        proc = PeriodicProcess(sim, 1.0, lambda: ticks.append(sim.now))
        sim.schedule(2.5, proc.stop)
        sim.run(until=10.0)
        assert ticks == [1.0, 2.0]
        assert not proc.running

    def test_invalid_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicProcess(sim, 0.0, lambda: None)


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).stream("arrivals")
        b = RandomStreams(7).stream("arrivals")
        assert a.random(5).tolist() == b.random(5).tolist()

    def test_different_names_are_independent(self):
        streams = RandomStreams(7)
        a = streams.stream("arrivals").random(5)
        b = streams.stream("requests").random(5)
        assert a.tolist() != b.tolist()

    def test_order_of_first_use_does_not_matter(self):
        s1 = RandomStreams(3)
        s1.stream("x")
        x_then_y = s1.stream("y").random(3).tolist()
        s2 = RandomStreams(3)
        y_only = s2.stream("y").random(3).tolist()
        assert x_then_y == y_only

    def test_attribute_access_is_stream(self):
        streams = RandomStreams(1)
        assert streams.arrivals is streams.stream("arrivals")

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RandomStreams(-1)

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("a") is streams.stream("a")
