"""Tests for the Azure-Functions-style trace substrate (Fig. 1 workload)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.azure import (
    AzureSynthConfig,
    FunctionTrace,
    TraceBundle,
    TraceReplayArrivals,
    binned_count_cv,
    counts_to_timestamps,
    fig1_report,
    multi_window_cv,
    synthesize_azure_like,
)


def make_trace(counts, bin_seconds=60.0, app="app000", function="fn0"):
    return FunctionTrace("owner", app, function, "http", np.array(counts), bin_seconds)


class TestFunctionTrace:
    def test_basic_stats(self):
        t = make_trace([10, 20, 30])
        assert t.n_bins == 3
        assert t.duration == 180.0
        assert t.total_invocations == 60
        assert t.mean_rate == pytest.approx(60 / 180.0)

    def test_rate_series(self):
        t = make_trace([60, 120])
        assert t.rate_series().tolist() == [1.0, 2.0]

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            make_trace([1, -2, 3])

    def test_two_dimensional_counts_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            FunctionTrace("o", "a", "f", "http", np.ones((2, 2)))

    def test_nonpositive_bin_rejected(self):
        with pytest.raises(ValueError, match="bin_seconds"):
            make_trace([1], bin_seconds=0.0)

    def test_rescale_hits_target_rate(self):
        t = make_trace([5, 10, 15, 20])
        scaled = t.rescaled(target_mean_rate=2.0)
        assert scaled.mean_rate == pytest.approx(2.0, rel=0.02)

    def test_rescale_preserves_shape(self):
        t = make_trace([100, 200, 400, 100])
        scaled = t.rescaled(target_mean_rate=t.mean_rate * 3)
        ratio = scaled.counts / t.counts
        assert np.allclose(ratio, 3.0, rtol=0.05)

    def test_rescale_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            make_trace([0, 0]).rescaled(1.0)

    def test_rescale_bad_target_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            make_trace([1, 2]).rescaled(0.0)


class TestBinnedCountCV:
    def test_constant_counts_have_zero_cv(self):
        assert binned_count_cv(np.full(100, 7), 60.0, 120.0) == 0.0

    def test_bursty_counts_have_high_cv(self):
        counts = np.zeros(100)
        counts[::10] = 100
        cv = binned_count_cv(counts, 60.0, 60.0)
        assert cv > 2.0

    def test_aggregation_smooths_alternation(self):
        # Alternating 0/20 is maximally bursty at 1-bin windows but exactly
        # flat at 2-bin windows.
        counts = np.tile([0, 20], 50)
        assert binned_count_cv(counts, 60.0, 60.0) == pytest.approx(1.0)
        assert binned_count_cv(counts, 60.0, 120.0) == pytest.approx(0.0)

    def test_window_below_bin_rejected(self):
        with pytest.raises(ValueError, match="bin width"):
            binned_count_cv(np.ones(10), 60.0, 30.0)

    def test_too_few_windows_rejected(self):
        with pytest.raises(ValueError, match="too short"):
            binned_count_cv(np.ones(3), 60.0, 180.0)

    def test_all_zero_counts(self):
        assert binned_count_cv(np.zeros(10), 60.0, 60.0) == 0.0

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=50), min_size=8, max_size=64),
        group=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_cv_is_scale_invariant(self, counts, group):
        """Multiplying every count by a constant leaves the CV unchanged."""
        counts = np.array(counts, dtype=np.int64)
        if counts.shape[0] // group < 2 or counts.sum() == 0:
            return
        base = binned_count_cv(counts, 60.0, 60.0 * group)
        scaled = binned_count_cv(counts * 7, 60.0, 60.0 * group)
        assert scaled == pytest.approx(base, abs=1e-9)


class TestTraceBundle:
    def make_bundle(self):
        return TraceBundle(
            [
                make_trace([1, 2, 3, 4], app="appA", function="f1"),
                make_trace([4, 3, 2, 1], app="appA", function="f2"),
                make_trace([10, 10, 10, 10], app="appB", function="f1"),
            ]
        )

    def test_app_trace_sums_functions(self):
        bundle = self.make_bundle()
        merged = bundle.app_trace("appA")
        assert merged.counts.tolist() == [5, 5, 5, 5]

    def test_total_trace_sums_everything(self):
        assert self.make_bundle().total_trace().counts.tolist() == [15, 15, 15, 15]

    def test_top_apps_ranked_by_volume(self):
        top = self.make_bundle().top_apps(2)
        assert [t.app for t in top] == ["appB", "appA"]

    def test_unknown_app_raises(self):
        with pytest.raises(KeyError):
            self.make_bundle().app_trace("nope")

    def test_mismatched_bins_rejected(self):
        with pytest.raises(ValueError, match="share bin width"):
            TraceBundle([make_trace([1, 2]), make_trace([1, 2, 3])])

    def test_empty_bundle_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceBundle([])

    def test_csv_roundtrip(self, tmp_path):
        bundle = self.make_bundle()
        path = tmp_path / "trace.csv"
        bundle.write_csv(path)
        loaded = TraceBundle.read_csv(path)
        assert len(loaded) == len(bundle)
        for orig, back in zip(bundle.functions, loaded.functions):
            assert back.owner == orig.owner
            assert back.app == orig.app
            assert back.function == orig.function
            assert back.trigger == orig.trigger
            assert back.counts.tolist() == orig.counts.tolist()

    def test_read_rejects_foreign_csv(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="Azure Functions"):
            TraceBundle.read_csv(path)


class TestSynthesis:
    def test_deterministic_given_seed(self):
        cfg = AzureSynthConfig(n_apps=5, days=0.25)
        b1 = synthesize_azure_like(np.random.default_rng(7), cfg)
        b2 = synthesize_azure_like(np.random.default_rng(7), cfg)
        assert b1.total_trace().counts.tolist() == b2.total_trace().counts.tolist()

    def test_mean_rate_near_target(self):
        cfg = AzureSynthConfig(n_apps=10, days=1.0, mean_total_rate=20.0)
        bundle = synthesize_azure_like(np.random.default_rng(0), cfg)
        assert bundle.total_trace().mean_rate == pytest.approx(20.0, rel=0.25)

    def test_popularity_is_skewed(self):
        cfg = AzureSynthConfig(n_apps=20, days=0.5)
        bundle = synthesize_azure_like(np.random.default_rng(1), cfg)
        top1, top2 = bundle.top_apps(2)
        median_volume = np.median(
            [bundle.app_trace(a).total_invocations for a in bundle.app_ids()]
        )
        assert top1.total_invocations > 3 * median_volume

    def test_fig1_multi_window_cv_mismatch(self):
        """The headline Fig. 1 claim: short-window CV >> long-window CV."""
        cfg = AzureSynthConfig(n_apps=20, days=2.0)
        bundle = synthesize_azure_like(np.random.default_rng(42), cfg)
        cvs = multi_window_cv(bundle.total_trace())
        short, mid, long_ = cvs[180.0], cvs[3 * 3600.0], cvs[12 * 3600.0]
        assert short > 2 * long_  # burst minutes inflate short windows
        assert short > mid

    def test_fig1_report_covers_total_and_top_apps(self):
        cfg = AzureSynthConfig(n_apps=6, days=2.0)
        bundle = synthesize_azure_like(np.random.default_rng(3), cfg)
        report = fig1_report(bundle)
        assert set(report) == {"total", "top1", "top2"}
        for cvs in report.values():
            assert set(cvs) == {180.0, 3 * 3600.0, 12 * 3600.0}


class TestReplay:
    def test_counts_to_timestamps_counts_match(self):
        t = make_trace([3, 0, 5])
        stamps = counts_to_timestamps(t, np.random.default_rng(0))
        assert stamps.shape[0] == 8
        assert (stamps[:3] < 60.0).all()
        assert (stamps[3:] >= 120.0).all()

    def test_timestamps_sorted(self):
        t = make_trace([10, 10, 10])
        stamps = counts_to_timestamps(t, np.random.default_rng(0))
        assert (np.diff(stamps) >= 0).all()

    def test_start_placement_stacks_at_bin_start(self):
        t = make_trace([4])
        stamps = counts_to_timestamps(t, np.random.default_rng(0), placement="start")
        assert stamps.tolist() == [0.0] * 4

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            counts_to_timestamps(make_trace([1]), np.random.default_rng(0), placement="mid")

    def test_empty_trace_yields_no_stamps(self):
        stamps = counts_to_timestamps(make_trace([0, 0]), np.random.default_rng(0))
        assert stamps.shape == (0,)

    def test_replay_arrivals_reproduce_timestamps(self):
        t = make_trace([2, 2])
        proc = TraceReplayArrivals(t, np.random.default_rng(5))
        stamps = []
        now = 0.0
        for _ in range(4):
            gap = proc.next_interarrival()
            now += gap
            stamps.append(now)
        assert proc.remaining == 0
        assert proc.next_interarrival() == math.inf
        assert stamps == pytest.approx(sorted(stamps))
        assert all(s <= 120.0 for s in stamps)

    def test_replay_rescales_on_request(self):
        t = make_trace([10, 10, 10, 10])
        proc = TraceReplayArrivals(
            t, np.random.default_rng(0), target_mean_rate=2 * t.mean_rate
        )
        assert proc.trace.total_invocations == pytest.approx(80, abs=2)

    def test_replay_cv_positive_for_bursty_trace(self):
        counts = np.zeros(30, dtype=np.int64)
        counts[::10] = 50
        proc = TraceReplayArrivals(
            make_trace(counts.tolist()), np.random.default_rng(0)
        )
        assert proc.cv() > 1.0

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_replay_emits_exactly_total_invocations(self, counts):
        t = make_trace(counts)
        proc = TraceReplayArrivals(t, np.random.default_rng(1))
        n = 0
        while proc.next_interarrival() != math.inf:
            n += 1
        assert n == t.total_invocations
