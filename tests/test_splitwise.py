"""Tests for the Splitwise-like prompt corpus (§9 workload substitution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.splitwise import (
    CODING,
    CONVERSATION,
    MixedCorpusSampler,
    SCENARIOS,
    get_scenario,
)


class TestScenarios:
    def test_lookup_by_name(self):
        assert get_scenario("conversation") is CONVERSATION
        assert get_scenario("coding") is CODING

    def test_unknown_scenario_raises_with_choices(self):
        with pytest.raises(KeyError, match="coding"):
            get_scenario("speech")

    def test_registry_names_match_objects(self):
        for name, scenario in SCENARIOS.items():
            assert scenario.name == name

    def test_coding_prompts_longer_than_conversation(self):
        rng = np.random.default_rng(0)
        conv = [CONVERSATION.prompt.sample(rng) for _ in range(2000)]
        code = [CODING.prompt.sample(rng) for _ in range(2000)]
        assert np.median(code) > 1.5 * np.median(conv)

    def test_coding_outputs_much_shorter(self):
        rng = np.random.default_rng(0)
        conv = [CONVERSATION.output.sample(rng) for _ in range(2000)]
        code = [CODING.output.sample(rng) for _ in range(2000)]
        assert np.median(conv) > 10 * np.median(code)

    def test_medians_near_published_values(self):
        rng = np.random.default_rng(1)
        conv_p = np.median([CONVERSATION.prompt.sample(rng) for _ in range(4000)])
        code_p = np.median([CODING.prompt.sample(rng) for _ in range(4000)])
        assert conv_p == pytest.approx(1020, rel=0.15)
        assert code_p == pytest.approx(1930, rel=0.15)

    def test_samples_respect_clip_bounds(self):
        rng = np.random.default_rng(2)
        for __ in range(500):
            p = CODING.prompt.sample(rng)
            o = CODING.output.sample(rng)
            assert CODING.prompt.lo <= p <= CODING.prompt.hi
            assert CODING.output.lo <= o <= CODING.output.hi

    def test_sampler_builds_requests(self):
        rng = np.random.default_rng(3)
        sampler = CONVERSATION.sampler("llama2-7b", rng, slo_latency=2.5)
        req = sampler.sample(arrival_time=10.0)
        assert req.model == "llama2-7b"
        assert req.arrival_time == 10.0
        assert req.slo_latency == 2.5
        assert req.prompt_tokens >= 16

    def test_mean_prompt_tokens_positive(self):
        rng = np.random.default_rng(4)
        assert CONVERSATION.mean_prompt_tokens(rng, n=256) > 500


class TestMixedCorpus:
    def test_default_mix_samples_both_scenarios(self):
        rng = np.random.default_rng(0)
        mixed = MixedCorpusSampler("opt-66b", rng)
        outputs = [mixed.sample(i).output_tokens for i in range(800)]
        # Coding outputs are tiny, conversation outputs are long: a mixed
        # stream must contain both modes.
        assert min(outputs) <= 8
        assert max(outputs) >= 100

    def test_single_scenario_weight(self):
        rng = np.random.default_rng(1)
        mixed = MixedCorpusSampler("opt-66b", rng, weights={"coding": 1.0})
        outputs = [mixed.sample(i).output_tokens for i in range(300)]
        assert np.median(outputs) < 40

    def test_weights_are_normalised(self):
        rng = np.random.default_rng(2)
        a = MixedCorpusSampler("m", rng, weights={"coding": 2.0, "conversation": 2.0})
        assert a._probs.tolist() == pytest.approx([0.5, 0.5])

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            MixedCorpusSampler("m", np.random.default_rng(0), weights={})

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            MixedCorpusSampler("m", np.random.default_rng(0), weights={"coding": 0.0})

    def test_unknown_scenario_in_weights(self):
        with pytest.raises(KeyError):
            MixedCorpusSampler("m", np.random.default_rng(0), weights={"speech": 1.0})

    def test_request_ids_unique_across_mix(self):
        rng = np.random.default_rng(3)
        mixed = MixedCorpusSampler("m", rng)
        rids = [(mixed.sample(i).model, mixed.sample(i).rid) for i in range(100)]
        # ids are unique per underlying sampler; (model, rid) pairs may repeat
        # across samplers but every sample must carry the right model.
        assert all(model == "m" for model, __ in rids)
