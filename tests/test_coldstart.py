"""Cold-start economy: tiered-cache properties, eviction order, pipelined
stage loading, scale-to-zero, and coverage-aware placement."""

from __future__ import annotations

import random
from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.core.deployment import ReplicaFactory
from repro.metrics.collector import MetricsCollector
from repro.models.zoo import LLAMA2_7B
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.replica import ReplicaState
from repro.pipeline.router import ModelRouter
from repro.refactoring.monitor import WorkloadMonitor
from repro.scaling.autoscaler import Autoscaler, AutoscalerConfig
from repro.scaling.warm_cache import CacheEntry, HostParamCache
from repro.scenarios.library import SCENARIOS
from repro.scenarios.spec import ScenarioSpec
from repro.transfer.links import GB


def _factory(ctx, **kwargs):
    router = ModelRouter(ctx.sim, LLAMA2_7B.name)
    metrics = MetricsCollector("test")
    factory = ReplicaFactory(
        ctx,
        routers={LLAMA2_7B.name: router},
        metrics=metrics,
        on_request_complete=lambda r: None,
        **kwargs,
    )
    return factory, router, metrics


class TestCacheOracle:
    """Randomised put/coverage sequences against a set-arithmetic oracle.

    Each put charges 1 byte per operator index (density 1), so the host
    accounting must equal the union's cardinality exactly — the overlap
    double-charge and the per-entry (vs union) coverage bugs both showed
    up only under overlapping ranges."""

    def test_put_coverage_matches_set_oracle(self, small_cluster, llama_profile):
        rng = random.Random(7)
        cache = HostParamCache()
        server = small_cluster.servers[0]
        n = len(llama_profile.graph)
        covered: set[int] = set()
        for _ in range(40):
            lo = rng.randrange(0, n - 1)
            hi = rng.randrange(lo + 1, n + 1)
            cache.put(
                server, llama_profile.spec.name, lo, hi, float(hi - lo), now=0.0
            )
            covered |= set(range(lo, hi))
            for _ in range(3):
                qlo = rng.randrange(0, n - 1)
                qhi = rng.randrange(qlo + 1, n + 1)
                oracle = sum(
                    llama_profile.graph.param_bytes(i, i + 1)
                    for i in range(qlo, qhi)
                    if i in covered
                )
                got = cache.coverage(server, llama_profile, qlo, qhi)
                assert got == pytest.approx(oracle, rel=1e-9, abs=1e-6)

    def test_overlapping_puts_never_double_charge(self, small_cluster):
        rng = random.Random(11)
        cache = HostParamCache()
        server = small_cluster.servers[0]
        covered: set[int] = set()
        for _ in range(60):
            lo = rng.randrange(0, 99)
            hi = rng.randrange(lo + 1, 101)
            cache.put(server, "m", lo, hi, float(hi - lo), now=0.0)
            covered |= set(range(lo, hi))
            assert server.host_memory_used == pytest.approx(len(covered))


class TestEvictionOrder:
    def _fill(self, cache, server, entries):
        for model, lo, hi, nbytes, now, kwargs in entries:
            assert cache.put(server, model, lo, hi, nbytes, now, **kwargs)

    def test_lru_evicts_least_recently_used(self, small_cluster, llama_profile):
        cache = HostParamCache(policy="lru")
        server = small_cluster.servers[0]
        server.host_memory = 10 * GB
        name = llama_profile.spec.name
        cache.put(server, name, 0, 5, 4 * GB, now=0.0)
        cache.put(server, "other", 0, 5, 4 * GB, now=1.0)
        # A coverage query with a timestamp is a use: it refreshes recency.
        cache.coverage(server, llama_profile, 0, 5, now=2.0)
        cache.put(server, "third", 0, 5, 4 * GB, now=3.0)  # forces eviction
        models = {e.model for e in cache.entries_for(server, "host")}
        assert models == {name, "third"}  # "other" was the LRU victim

    def test_gdsf_prefers_frequency_over_recency(
        self, small_cluster, llama_profile
    ):
        cache = HostParamCache(policy="gdsf")
        server = small_cluster.servers[0]
        server.host_memory = 10 * GB
        name = llama_profile.spec.name
        cache.put(server, name, 0, 5, 4 * GB, now=0.0)
        for t in (1.0, 2.0, 3.0):  # the old entry is hot
            cache.coverage(server, llama_profile, 0, 5, now=t)
        cache.put(server, "recent-one-shot", 0, 5, 4 * GB, now=4.0)
        cache.put(server, "churn", 0, 5, 4 * GB, now=5.0)  # forces eviction
        models = {e.model for e in cache.entries_for(server, "host")}
        # LRU would keep the more recent one-shot; GDSF keeps the hot set.
        assert name in models
        assert "recent-one-shot" not in models

    def test_gdsf_prefers_costly_reloads(self, small_cluster):
        cache = HostParamCache(policy="gdsf")
        server = small_cluster.servers[0]
        server.host_memory = 10 * GB
        cache.put(server, "pricey", 0, 5, 4 * GB, 0.0, load_cost=40.0)
        cache.put(server, "cheap", 0, 5, 4 * GB, 1.0, load_cost=4.0)
        cache.put(server, "churn", 0, 5, 4 * GB, 2.0, load_cost=4.0)
        models = {e.model for e in cache.entries_for(server, "host")}
        assert "pricey" in models
        assert "cheap" not in models

    def test_gdsf_clock_ages_out_abandoned_entries(self, small_cluster):
        """The aging clock must eventually reclaim a once-hot entry that
        stopped being referenced — without it GDSF pins stale hot sets."""
        cache = HostParamCache(policy="gdsf")
        server = small_cluster.servers[0]
        server.host_memory = 10 * GB
        server.ssd_capacity = 2 * GB  # demotions die quickly too
        cache.put(server, "was-hot", 0, 5, 2 * GB, now=0.0)
        for t in range(1, 6):
            cache.put(server, "was-hot", 0, 5, 2 * GB, now=float(t))
        for j in range(60):  # sustained one-shot churn, never re-used
            cache.put(server, f"churn-{j}", 0, 5, 2 * GB, now=10.0 + j)
        models = {e.model for e in cache.entries_for(server, "host")}
        assert "was-hot" not in models


class TestTwoTier:
    def test_host_eviction_demotes_to_ssd(self, small_cluster, llama_profile):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        server.host_memory = 10 * GB
        name = llama_profile.spec.name
        half = len(llama_profile.graph) // 2
        stage_bytes = llama_profile.graph.param_bytes(0, half)
        assert stage_bytes < server.host_memory  # must fit before it evicts
        cache.put(server, name, 0, half, stage_bytes, now=0.0)
        cache.put(server, "sweeper", 0, 5, 9 * GB, now=1.0)  # evicts the model
        host, ssd = cache.coverage_by_tier(server, llama_profile, 0, half)
        assert host == 0.0
        assert ssd == pytest.approx(stage_bytes)
        assert server.ssd_used == pytest.approx(stage_bytes)

    def test_tiers_never_overlap(self, small_cluster, llama_profile):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        name = llama_profile.spec.name
        n = len(llama_profile.graph)
        half = n // 2
        # Front half lives in host; the full range was demoted earlier, so
        # SSD holds everything — coverage must not count the overlap twice.
        cache._insert(
            server,
            "ssd",
            CacheEntry(name, 0, n, llama_profile.graph.param_bytes(0, n), 0.0),
        )
        cache.put(
            server, name, 0, half, llama_profile.graph.param_bytes(0, half), 1.0
        )
        host, ssd = cache.coverage_by_tier(server, llama_profile, 0, n)
        total = llama_profile.graph.param_bytes(0, n)
        assert host == pytest.approx(llama_profile.graph.param_bytes(0, half))
        assert host + ssd == pytest.approx(total)

    def test_ssd_eviction_discards(self, small_cluster):
        cache = HostParamCache()
        server = small_cluster.servers[0]
        server.host_memory = 4 * GB
        server.ssd_capacity = 4 * GB
        cache.put(server, "a", 0, 5, 3 * GB, now=0.0)
        cache.put(server, "b", 0, 5, 3 * GB, now=1.0)  # a demotes to SSD
        cache.put(server, "c", 0, 5, 3 * GB, now=2.0)  # b demotes, a discarded
        assert {e.model for e in cache.entries_for(server, "host")} == {"c"}
        assert {e.model for e in cache.entries_for(server, "ssd")} == {"b"}
        assert server.ssd_used <= server.ssd_capacity

    def test_probe_does_not_touch(self, small_cluster, llama_profile):
        cache = HostParamCache(policy="gdsf")
        server = small_cluster.servers[0]
        name = llama_profile.spec.name
        cache.put(server, name, 0, 10, GB, now=0.0)
        (entry,) = cache.entries_for(server, "host")
        cache.coverage_by_tier(server, llama_profile, 0, 10, None)  # probe
        assert entry.freq == 1
        cache.coverage_by_tier(server, llama_profile, 0, 10, now=1.0)  # use
        assert entry.freq == 2


class TestPipelinedLoading:
    def test_pipelined_activates_before_full_load(self, ctx):
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(4)
        profile = ctx.profile(LLAMA2_7B)

        seq_factory, _, seq_metrics = _factory(ctx, pipelined_loading=False)
        seq_factory.deploy(profile, plan)
        ctx.sim.run_until_idle()
        seq_event = next(
            e for e in seq_metrics.events if e.kind == "scale_out"
        )

        pipe_factory, _, pipe_metrics = _factory(ctx, pipelined_loading=True)
        replica = pipe_factory.deploy(profile, plan)
        ctx.sim.run_until_idle()
        pipe_event = next(
            e for e in pipe_metrics.events if e.kind == "scale_out"
        )

        # The replica serves once stage 0 lands; later stages were gated
        # and opened front-to-back as their own transfers completed.
        assert pipe_event.init_time < seq_event.init_time
        stages = replica.stages
        assert all(s.was_gated for s in stages)
        assert all(s.loaded and s.params_resident for s in stages)
        # Front-to-back sequencing: each later stage opens after the one
        # before it.  Stage 0's own mark is deferred by the startup
        # overhead, so the ordering claim starts at stage 1.
        marks = [s.loaded_at for s in stages[1:]]
        assert marks == sorted(marks)

    def test_cancelled_load_fabricates_no_warm_coverage(self, ctx):
        cache = HostParamCache()
        factory, router, metrics = _factory(
            ctx, warm_cache=cache, pipelined_loading=True
        )
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        replica = factory.deploy(ctx.profile(LLAMA2_7B), plan)
        factory.release(replica)  # cancelled while transfers are in flight
        # At cancellation no bytes have landed: nothing may look warm.
        assert all(not s.params_resident for s in replica.stages)
        assert sum(cache.server_bytes(s) for s in ctx.cluster.servers) == 0.0
        ctx.sim.run_until_idle()
        assert replica.state is ReplicaState.RELEASED
        assert router.active_replicas == []
        assert not any(e.kind == "scale_out" for e in metrics.events)


class TestCoverageSteering:
    def test_stages_pinned_to_servers_holding_their_bytes(self, ctx):
        cache = HostParamCache()
        factory, _, _ = _factory(ctx, warm_cache=cache)
        profile = ctx.profile(LLAMA2_7B)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        targets = [ctx.cluster.servers[2], ctx.cluster.servers[4]]
        for sp, server in zip(plan.stages, targets):
            cache.put(
                server, profile.spec.name, sp.start, sp.end, sp.param_bytes, 0.0
            )
        replica = factory.deploy(profile, plan)
        placed = [s.reservation.gpu.server for s in replica.stages]
        assert placed == targets


class TestScaleToZero:
    def _scaler(self, ctx, llama_profile, router, released, **cfg):
        plan = GranularityLadder(llama_profile, stage_counts=(2, 4)).plan(2)
        scaler = Autoscaler(
            ctx.sim,
            router,
            WorkloadMonitor(),
            llama_profile,
            MetricsCollector("test"),
            lambda profile, p, **kw: SimpleNamespace(
                state=ReplicaState.LOADING
            ),
            released.append,
            lambda cv, queue: plan,
            AutoscalerConfig(**cfg),
        )
        scaler.stop()  # tick manually; the periodic process never ends
        return scaler, plan

    def _idle_replica(self, plan):
        return SimpleNamespace(
            plan=plan,
            max_batch=plan.max_batch,
            activated_at=0.0,
            state=ReplicaState.ACTIVE,
        )

    def test_idle_tenant_scales_to_zero(self, ctx, llama_profile):
        released: list = []
        router = SimpleNamespace(active_replicas=[], total_queue=0)
        scaler, plan = self._scaler(
            ctx, llama_profile, router, released, min_replicas=0, idle_window=1.0
        )
        router.active_replicas = [self._idle_replica(plan)]
        ctx.sim.schedule(0.0, scaler.tick)
        ctx.sim.schedule(1.5, scaler.tick)  # past the idle window
        ctx.sim.run_until_idle()
        assert released == router.active_replicas

    def test_min_replicas_one_never_reaches_zero(self, ctx, llama_profile):
        released: list = []
        router = SimpleNamespace(active_replicas=[], total_queue=0)
        scaler, plan = self._scaler(
            ctx, llama_profile, router, released, min_replicas=1, idle_window=1.0
        )
        router.active_replicas = [self._idle_replica(plan)]
        ctx.sim.schedule(0.0, scaler.tick)
        ctx.sim.schedule(1.5, scaler.tick)
        ctx.sim.run_until_idle()
        assert released == []

    def test_queued_work_blocks_scale_to_zero(self, ctx, llama_profile):
        released: list = []
        router = SimpleNamespace(active_replicas=[], total_queue=3)
        scaler, plan = self._scaler(
            ctx, llama_profile, router, released, min_replicas=0, idle_window=1.0
        )
        router.active_replicas = [self._idle_replica(plan)]
        ctx.sim.schedule(0.0, scaler.tick)
        ctx.sim.schedule(1.5, scaler.tick)
        ctx.sim.run_until_idle()
        assert released == []


class TestFlexPipeBatchCap:
    def test_scale_out_deploys_honour_the_operating_cap(self, ctx):
        from repro.core.flexpipe import FlexPipeSystem

        system = FlexPipeSystem(
            ctx, [LLAMA2_7B], initial_replicas=0, batch_cap=4
        )
        profile = ctx.profile(LLAMA2_7B)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        assert plan.max_batch > 4  # the cap must actually bind
        replica = system._autoscaler_deploy(profile, plan)
        assert replica.batcher.config.max_batch <= 4


class TestColdstartSpec:
    def test_hardware_knobs_validate(self):
        base = SCENARIOS["coldstart-economy"]
        for knob in ("host_cache_gb", "ssd_cache_gb", "storage_gbps"):
            with pytest.raises(ValueError):
                replace(base, **{knob: 0.0})

    def test_round_trip_preserves_hardware_knobs(self):
        base = SCENARIOS["coldstart-economy"]
        again = ScenarioSpec.from_dict(base.to_dict())
        assert again == base
        assert again.host_cache_gb == base.host_cache_gb
        assert again.ssd_cache_gb == base.ssd_cache_gb
        assert again.storage_gbps == base.storage_gbps

    def test_fleet_is_deterministic_and_large(self):
        base = SCENARIOS["coldstart-economy"]
        names = [m.model for m in base.models]
        assert len(names) == 108
        assert len(set(names)) == 108
        # Sizes are pinned in the names, so every process synthesises the
        # identical fleet.
        assert all(n.startswith("FLEET-") and n.endswith("g") for n in names)
