"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations


import pytest

from repro.cli import EXPERIMENTS, build_parser, main
from repro.experiments.report import (
    ENTRIES,
    render_experiments_md,
    write_experiments_md,
)


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])

    def test_seed_flag(self):
        args = build_parser().parse_args(["--seed", "7", "run", "table1"])
        assert args.seed == 7

    def test_no_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestListCommand:
    def test_lists_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out


class TestRunCommand:
    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table2_prints_paper_columns(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "paper_batch" in out
        assert "1024" in out

    def test_run_fig1_prints_windows(self, capsys):
        assert main(["run", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "180" in out

    def test_every_experiment_registered_with_artefact(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.artefact
            assert callable(experiment.runner)

    def test_light_heavy_split(self):
        light = {n for n, e in EXPERIMENTS.items() if not e.heavy}
        assert {"table1", "table2", "fig1"} <= light
        assert EXPERIMENTS["fig8"].heavy


class TestReport:
    def test_render_covers_all_entries(self, tmp_path):
        text = render_experiments_md(results_dir=tmp_path)
        for entry in ENTRIES:
            assert entry.artefact in text
            assert entry.bench in text
        assert "Pending benches" in text  # empty results dir

    def test_render_embeds_available_results(self, tmp_path):
        (tmp_path / "table2.txt").write_text("MEASURED-TABLE-2-CONTENT\n")
        text = render_experiments_md(results_dir=tmp_path)
        assert "MEASURED-TABLE-2-CONTENT" in text

    def test_write_experiments_md(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig1.txt").write_text("FIG1-RESULT\n")
        output = tmp_path / "EXPERIMENTS.md"
        path = write_experiments_md(results_dir=results, output=output)
        assert path == output
        assert "FIG1-RESULT" in output.read_text()

    def test_entries_cover_all_paper_artefacts(self):
        stems = {e.result_stem for e in ENTRIES}
        paper_artefacts = {
            "table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig8",
            "fig9", "fig10", "fig11", "fig12", "fig13", "case_study",
        }
        extras = {
            "ablations", "queueing", "migration",
            "sensitivity_alpha", "sensitivity_sigma", "sensitivity_eq11",
        }
        assert stems == paper_artefacts | extras
