"""Tests for time-series recording/export and ASCII figure rendering."""

from __future__ import annotations

import math
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ascii_plot import (
    bar_chart,
    grouped_bar_chart,
    histogram,
    sparkline,
)
from repro.metrics.timeline import Series, Timeline


class TestSeries:
    def test_record_and_stats(self):
        s = Series("latency")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            s.record(t, v)
        assert len(s) == 3
        assert s.mean() == pytest.approx(3.0)
        assert s.percentile(50) == pytest.approx(3.0)

    def test_out_of_order_rejected(self):
        s = Series("x")
        s.record(5.0, 1.0)
        with pytest.raises(ValueError, match="before last"):
            s.record(4.0, 1.0)

    def test_empty_stats_raise(self):
        with pytest.raises(ValueError, match="empty"):
            Series("x").mean()
        with pytest.raises(ValueError, match="empty"):
            Series("x").percentile(99)

    def test_window_mean_aggregates(self):
        s = Series("rt")
        samples = [(1.0, 2.0), (5.0, 4.0), (12.0, 10.0), (14.0, 20.0)]
        for t, v in samples:
            s.record(t, v)
        w = s.window_mean(10.0)
        assert len(w) == 2
        assert w.values[0] == pytest.approx(3.0)  # (2+4)/2 in [0,10)
        assert w.values[1] == pytest.approx(15.0)  # (10+20)/2 in [10,20)
        assert w.times == [5.0, 15.0]

    def test_window_mean_skips_empty_windows(self):
        s = Series("rt")
        s.record(1.0, 1.0)
        s.record(25.0, 3.0)
        w = s.window_mean(10.0)
        assert w.times == [5.0, 25.0]

    def test_window_mean_empty_series(self):
        assert len(Series("x").window_mean(10.0)) == 0

    def test_window_mean_validates(self):
        with pytest.raises(ValueError, match="window"):
            Series("x").window_mean(0.0)

    def test_window_mean_with_duration_bins_tail(self):
        s = Series("rt")
        s.record(95.0, 7.0)
        w = s.window_mean(10.0, duration=100.0)
        assert w.times[-1] == pytest.approx(95.0)


class TestTimeline:
    def test_record_creates_series(self):
        tl = Timeline()
        tl.record("a", 0.0, 1.0)
        tl.record("b", 0.0, 2.0)
        assert tl.names() == ["a", "b"]
        assert "a" in tl
        assert "c" not in tl

    def test_csv_roundtrip(self, tmp_path):
        tl = Timeline()
        for i in range(10):
            tl.record("qps", float(i), i * 1.5)
            tl.record("util", float(i), math.sin(i))
        path = tmp_path / "timeline.csv"
        tl.to_csv(path)
        back = Timeline.from_csv(path)
        assert back.names() == tl.names()
        assert back.series("util").values == pytest.approx(tl.series("util").values)
        assert back.series("qps").times == tl.series("qps").times

    def test_csv_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="Timeline CSV"):
            Timeline.from_csv(path)

    def test_json_roundtrip(self, tmp_path):
        tl = Timeline()
        tl.record("x", 1.0, 2.0)
        tl.record("x", 2.0, 4.0)
        path = tmp_path / "timeline.json"
        tl.to_json(path)
        back = Timeline.from_json(path)
        assert back.series("x").values == [2.0, 4.0]

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(allow_nan=False, allow_infinity=False, width=32),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_csv_roundtrip_property(self, samples):
        import tempfile

        tl = Timeline()
        for t, v in sorted(samples, key=lambda p: p[0]):
            tl.record("s", t, float(v))
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "t.csv"
            tl.to_csv(path)
            back = Timeline.from_csv(path)
        if "s" in tl:
            assert back.series("s").times == tl.series("s").times
            assert back.series("s").values == tl.series("s").values

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6),
                st.floats(allow_nan=False, allow_infinity=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_numpy_scalar_roundtrip_property(self, samples):
        """Samples recorded as numpy scalars (the simulator's native
        types) must survive CSV and JSON round-trips bit-exactly —
        regression: ``repr(np.float64(...))`` broke ``from_csv``."""
        import tempfile

        import numpy as np

        tl = Timeline()
        for t, v in sorted(samples, key=lambda p: p[0]):
            tl.record("s", np.float64(t), np.float64(v))
        with tempfile.TemporaryDirectory() as tmp:
            csv_path = pathlib.Path(tmp) / "t.csv"
            json_path = pathlib.Path(tmp) / "t.json"
            tl.to_csv(csv_path)
            tl.to_json(json_path)
            csv_back = Timeline.from_csv(csv_path)
            json_back = Timeline.from_json(json_path)
        if "s" in tl:
            for back in (csv_back, json_back):
                assert back.series("s").times == tl.series("s").times
                assert back.series("s").values == tl.series("s").values

    def test_record_coerces_to_builtin_float(self):
        import numpy as np

        s = Series("x")
        s.record(np.float64(1.5), np.float32(2.5))
        assert type(s.times[0]) is float
        assert type(s.values[0]) is float


class TestSparkline:
    def test_renders_extremes(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_nan_renders_blank(self):
        assert sparkline([0.0, math.nan, 1.0])[1] == " "

    def test_all_nan(self):
        assert sparkline([math.nan, math.nan]) == "  "

    def test_width_resampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10
        assert line[0] == "▁" and line[-1] == "█"


class TestBarCharts:
    def test_bar_chart_scales_to_max(self):
        out = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_bar_chart_title_and_unit(self):
        out = bar_chart(["x"], [3.0], title="T", unit="s")
        assert out.startswith("T\n")
        assert "3s" in out

    def test_bar_chart_mismatched_lengths(self):
        with pytest.raises(ValueError, match="labels"):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_empty(self):
        assert bar_chart([], [], title="t") == "t"

    def test_grouped_chart_global_scale(self):
        out = grouped_bar_chart(
            ["cv1", "cv4"],
            {"FlexPipe": [1.0, 2.0], "Tetris": [4.0, 4.0]},
            width=8,
        )
        lines = [l for l in out.splitlines() if "|" in l]
        flex_cv1 = next(l for l in lines if "FlexPipe" in l)
        assert flex_cv1.count("█") == 2  # 1.0 / 4.0 * 8

    def test_grouped_chart_validates(self):
        with pytest.raises(ValueError, match="groups"):
            grouped_bar_chart(["a"], {"s": [1.0, 2.0]})


class TestHistogram:
    def test_counts_sum_to_samples(self):
        out = histogram([1, 1, 2, 3, 3, 3], bins=3)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 6

    def test_empty_data(self):
        assert "(no data)" in histogram([], title="h")

    def test_filters_non_finite(self):
        out = histogram([1.0, math.inf, math.nan, 2.0], bins=2)
        counts = [int(line.rsplit(" ", 1)[-1]) for line in out.splitlines()]
        assert sum(counts) == 2

    def test_validates_bins(self):
        with pytest.raises(ValueError, match="bins"):
            histogram([1.0], bins=0)
