"""Simulation-layer sharding: the conservative coordinator protocol.

These tests exercise the generic message-passing machinery directly with
synthetic shard programs (scenario shards never exchange messages, so the
windowed protocol needs its own coverage): worker-count invariance,
conservative-delivery enforcement, idle-window skipping, residual
delivery at the horizon, and error propagation through the persistent
worker pool.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.runner import PersistentWorkerPool, WorkerError
from repro.simulation.engine import SimulationError
from repro.simulation.sharding import (
    ShardCoordinator,
    ShardMessage,
    ShardProgram,
    SimShardProgram,
)


class PingPong(SimShardProgram):
    """Two-or-more shards bouncing a counter around a ring.

    Shard 0 seeds the token at t=0; every delivery increments the count
    and forwards it to the next shard ``latency`` seconds later.  The
    trace of (time, count) pairs is a deterministic function of (ring
    size, latency, horizon) — the cross-worker invariance witness.
    """

    lookahead = 1.0

    def __init__(self, ring: int, latency: float = 1.0):
        super().__init__()
        self.ring = ring
        self.latency = latency
        self.trace: list[tuple[float, int]] = []

    def setup(self) -> None:
        if self.shard_index == 0:
            self.sim.schedule_at(0.0, self._seed)

    def _seed(self) -> None:
        self._forward(0)

    def _forward(self, count: int) -> None:
        self.send(
            self.sim.now + self.latency,
            (self.shard_index + 1) % self.ring,
            "token",
            count + 1,
        )

    def handle_message(self, message: ShardMessage) -> None:
        self.trace.append((self.sim.now, message.payload))
        self._forward(message.payload)

    def finish(self):
        return self.trace


class Mute(ShardProgram):
    """A shard with local events only (never sends)."""

    def __init__(self, n_events: int = 3):
        super().__init__()
        self.n_events = n_events
        self.fired: list[float] = []
        self._clock = 0.0

    def advance(self, until: float) -> None:
        while len(self.fired) < self.n_events:
            t = (len(self.fired) + 1) * 2.0
            if t > until:
                break
            self.fired.append(t)
        self._clock = until

    def next_event_time(self):
        nxt = (len(self.fired) + 1) * 2.0
        return nxt if len(self.fired) < self.n_events else None

    def finish(self):
        return self.fired


class Rogue(SimShardProgram):
    """Violates its lookahead promise: sends with near-zero latency."""

    lookahead = 5.0

    def setup(self) -> None:
        if self.shard_index == 0:
            self.sim.schedule_at(1.0, self._cheat)

    def _cheat(self) -> None:
        self.send(self.sim.now + 0.01, 1, "early")

    def handle_message(self, message: ShardMessage) -> None:  # pragma: no cover
        pass

    def finish(self):
        return None


class Exploding:
    """Worker-pool factory whose construction raises."""

    def __init__(self):
        raise RuntimeError("boom at construction")


class MethodBomb:
    def __init__(self):
        pass

    def detonate(self):
        raise ValueError("boom at call")

    def ok(self, x):
        return x * 2


# ----------------------------------------------------------------------
# Coordinator protocol
# ----------------------------------------------------------------------
class TestCoordinator:
    def run_ring(self, ring: int, workers: int, horizon: float = 20.0):
        coordinator = ShardCoordinator(
            [(PingPong, (ring,)) for _ in range(ring)],
            horizon=horizon,
            workers=workers,
        )
        return coordinator, coordinator.run()

    def test_token_circulates(self):
        coordinator, results = self.run_ring(2, workers=1)
        # Token seeded at t=0, arrives at shard 1 at t=1, back at 0 at
        # t=2, ... => ~horizon hops total, alternating shards.
        assert results[0][0] == (2.0, 2)
        assert results[1][0] == (1.0, 1)
        assert coordinator.messages_routed >= 19
        assert coordinator.windows >= 19  # lookahead-1 windows over t=20

    def test_worker_count_invariance(self):
        _, baseline = self.run_ring(3, workers=1)
        for workers in (2, 3, 8):
            _, results = self.run_ring(3, workers=workers)
            assert results == baseline, f"workers={workers} diverged"

    def test_events_processed_aggregates(self):
        coordinator, _ = self.run_ring(2, workers=1)
        assert coordinator.events_processed > 0

    def test_conservative_violation_raises(self):
        coordinator = ShardCoordinator(
            [(Rogue, ()), (Rogue, ())], horizon=10.0, workers=1
        )
        with pytest.raises(SimulationError, match="conservative sync"):
            coordinator.run()

    def test_unknown_destination_raises(self):
        class Stray(Rogue):
            lookahead = 1.0

            def _cheat(self) -> None:
                self.send(self.sim.now + 2.0, 7, "nowhere")

        coordinator = ShardCoordinator(
            [(Stray, ()), (Stray, ())], horizon=10.0, workers=1
        )
        with pytest.raises(SimulationError, match="unknown\\s+shard 7"):
            coordinator.run()

    def test_idle_shards_skip_to_horizon(self):
        # Finite lookahead but only 3 local events per shard: after the
        # last one the coordinator must jump to the horizon instead of
        # spinning 0.5-wide windows to t=1000.
        class FiniteMute(Mute):
            lookahead = 0.5

        coordinator = ShardCoordinator(
            [(FiniteMute, ()), (FiniteMute, ())], horizon=1000.0, workers=1
        )
        results = coordinator.run()
        assert results == [[2.0, 4.0, 6.0], [2.0, 4.0, 6.0]]
        # Windows track events (6 at 2.0-spacing / 0.5-lookahead hops),
        # not the 2000 a naive fixed-step loop would take.
        assert coordinator.windows < 30

    def test_message_at_horizon_not_lost(self):
        # A token sent to arrive exactly at the horizon must still be
        # delivered (the residual pass) so conservation holds at quiesce.
        coordinator = ShardCoordinator(
            [(PingPong, (2,)), (PingPong, (2,))], horizon=3.0, workers=1
        )
        results = coordinator.run()
        arrivals = [t for trace in results for (t, _) in trace]
        assert 3.0 in arrivals

    def test_rejects_empty_and_bad_args(self):
        with pytest.raises(ValueError):
            ShardCoordinator([], horizon=1.0)
        with pytest.raises(ValueError):
            ShardCoordinator([(PingPong, (1,))], horizon=0.0)
        with pytest.raises(ValueError):
            ShardCoordinator([(PingPong, (1,))], horizon=1.0, lookahead=0.0)

    def test_infinite_lookahead_single_window(self):
        coordinator = ShardCoordinator(
            [(Mute, ()), (Mute, ())], horizon=50.0, workers=1
        )
        results = coordinator.run()
        assert results == [[2.0, 4.0, 6.0], [2.0, 4.0, 6.0]]
        assert coordinator.windows == 1

    def test_past_delivery_raises(self):
        program = PingPong(2)
        program.shard_index = 1
        program.setup()
        program.advance(5.0)
        with pytest.raises(SimulationError, match="local time"):
            program.deliver([ShardMessage(time=1.0, dst=1, kind="late")])


class TestMessageOrdering:
    def test_total_order_key(self):
        messages = [
            ShardMessage(time=2.0, dst=0, kind="b", src=1, seq=0),
            ShardMessage(time=1.0, dst=0, kind="a", src=2, seq=5),
            ShardMessage(time=1.0, dst=0, kind="c", src=0, seq=1),
            ShardMessage(time=1.0, dst=0, kind="d", src=0, seq=0),
        ]
        ordered = sorted(messages, key=lambda m: m.sort_key)
        assert [m.kind for m in ordered] == ["d", "c", "a", "b"]

    def test_send_stamps_src_and_seq(self):
        program = PingPong(2)
        program.shard_index = 4
        program.send(1.0, 0, "x")
        program.send(2.0, 1, "y")
        out = program.collect_outbound()
        assert [(m.src, m.seq) for m in out] == [(4, 0), (4, 1)]
        assert program.collect_outbound() == []


# ----------------------------------------------------------------------
# Persistent worker pool
# ----------------------------------------------------------------------
class TestPersistentWorkerPool:
    def test_round_trips_calls(self):
        with PersistentWorkerPool(
            [(MethodBomb, ()), (MethodBomb, ())]
        ) as pool:
            assert len(pool) == 2
            assert pool.call_all("ok", [(3,), (4,)]) == [6, 8]
            # Workers hold state across calls — a second round works.
            assert pool.call_all("ok", [(1,), (2,)]) == [2, 4]

    def test_construction_error_propagates(self):
        with pytest.raises(WorkerError, match="boom at construction"):
            PersistentWorkerPool([(Exploding, ())])

    def test_method_error_propagates(self):
        pool = PersistentWorkerPool([(MethodBomb, ())])
        try:
            with pytest.raises(WorkerError, match="boom at call"):
                pool.call_all("detonate", [()])
        finally:
            pool.close()

    def test_close_idempotent(self):
        pool = PersistentWorkerPool([(MethodBomb, ())])
        pool.close()
        pool.close()


def test_coordinator_multiworker_matches_local_with_pool():
    """End-to-end: pooled hosts (forked) equal in-process hosts."""
    ring = 4
    results = {}
    for workers in (1, 2, 4):
        coordinator = ShardCoordinator(
            [(PingPong, (ring,)) for _ in range(ring)],
            horizon=12.0,
            workers=workers,
        )
        results[workers] = coordinator.run()
    assert results[1] == results[2] == results[4]
    token_counts = [c for trace in results[1] for (_, c) in trace]
    assert max(token_counts) >= 11  # ~1 hop/second over t=12


def test_lookahead_must_be_positive():
    class Zero(ShardProgram):
        lookahead = 0.0

        def advance(self, until: float) -> None:
            pass

        def finish(self):
            return None

    coordinator = ShardCoordinator([(Zero, ()), (Zero, ())], horizon=5.0)
    with pytest.raises(SimulationError, match="lookahead"):
        coordinator.run()


def test_infinite_default_lookahead_never_windows():
    assert math.isinf(ShardProgram.lookahead)
