"""Tests for the FlexPipe core: config, context, deployment, controller."""

from __future__ import annotations

import pytest

from types import SimpleNamespace

from repro.core.config import FlexPipeConfig
from repro.core.context import get_graph
from repro.core.deployment import ReplicaFactory
from repro.core.flexpipe import FlexPipeSystem
from repro.core.serving import ServingSystem
from repro.metrics.collector import MetricsCollector
from repro.models.zoo import LLAMA2_7B, OPT_66B
from repro.pipeline.replica import ReplicaState
from repro.pipeline.router import ModelRouter
from repro.scaling.warm_cache import HostParamCache
from repro.simulation.randomness import RandomStreams
from repro.workloads.requests import RequestSampler


class TestConfig:
    def test_defaults_follow_paper(self):
        cfg = FlexPipeConfig()
        assert cfg.decision_latency < 0.005  # "<5ms" (§6.3)
        assert cfg.always_on_fraction == pytest.approx(0.30)
        assert 4 in cfg.stage_counts and 32 in cfg.stage_counts

    def test_validation(self):
        with pytest.raises(ValueError):
            FlexPipeConfig(alpha_tradeoff=2.0)
        with pytest.raises(ValueError):
            FlexPipeConfig(control_interval=0.0)
        with pytest.raises(ValueError):
            FlexPipeConfig(initial_stages=3)  # not in stage_counts


class TestContextCaches:
    def test_graph_cache_shares_instances(self):
        assert get_graph(LLAMA2_7B) is get_graph(LLAMA2_7B)

    def test_profile_cache_keyed_by_cost_config(self, ctx):
        p1 = ctx.profile(LLAMA2_7B)
        p2 = ctx.profile(LLAMA2_7B)
        assert p1 is p2

    def test_ladder_cache_keyed_by_stage_counts(self, ctx):
        l1 = ctx.ladder(LLAMA2_7B, (2, 4))
        l2 = ctx.ladder(LLAMA2_7B, (2, 4))
        l3 = ctx.ladder(LLAMA2_7B, (2, 4, 8))
        assert l1 is l2
        assert l1 is not l3


def make_factory(ctx, warm_cache=None, **kwargs):
    router = ModelRouter(ctx.sim, LLAMA2_7B.name)
    metrics = MetricsCollector("test")
    factory = ReplicaFactory(
        ctx,
        routers={LLAMA2_7B.name: router},
        metrics=metrics,
        on_request_complete=lambda r: None,
        warm_cache=warm_cache,
        **kwargs,
    )
    return factory, router, metrics


class TestReplicaFactory:
    def test_deploy_loads_then_activates(self, ctx):
        factory, router, metrics = make_factory(ctx, startup_overhead=1.0)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        replica = factory.deploy(ctx.profile(LLAMA2_7B), plan)
        assert replica.state is ReplicaState.LOADING
        ctx.sim.run_until_idle()
        assert replica.state is ReplicaState.ACTIVE
        assert router.active_replicas == [replica]
        event = metrics.events[-1]
        assert event.kind == "scale_out"
        # Init time covers load + the serverless startup overhead.
        assert event.init_time > 1.0

    def test_warm_cache_populated_on_load(self, ctx):
        cache = HostParamCache()
        factory, _, _ = make_factory(ctx, warm_cache=cache)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        replica = factory.deploy(ctx.profile(LLAMA2_7B), plan)
        ctx.sim.run_until_idle()
        total_cached = sum(
            cache.server_bytes(s) for s in ctx.cluster.servers
        )
        assert total_cached == pytest.approx(plan.stages[0].param_bytes + plan.stages[1].param_bytes)

    def test_second_deploy_on_warm_servers_is_faster(self, ctx):
        cache = HostParamCache()
        factory, _, metrics = make_factory(ctx, warm_cache=cache, startup_overhead=1.0)
        profile = ctx.profile(LLAMA2_7B)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        first = factory.deploy(profile, plan)
        ctx.sim.run_until_idle()
        cold_init = metrics.events[-1].init_time
        factory.release(first)
        ctx.sim.run_until_idle()
        second = factory.deploy(profile, plan)
        ctx.sim.run_until_idle()
        warm_event = metrics.events[-1]
        assert warm_event.warm
        assert warm_event.init_time < cold_init / 2

    def test_batch_degradation_under_memory_pressure(self, ctx):
        """A fragmented cluster shrinks the KV pool instead of failing."""
        for gpu in ctx.cluster.gpus:
            gpu.background_mem = 55 * 1024**3
        factory, _, _ = make_factory(ctx)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        replica = factory.deploy(ctx.profile(LLAMA2_7B), plan, batch_cap=512)
        assert replica.batcher.config.max_batch < 512

    def test_release_returns_memory(self, ctx):
        factory, router, _ = make_factory(ctx)
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        replica = factory.deploy(ctx.profile(LLAMA2_7B), plan)
        ctx.sim.run_until_idle()
        held = ctx.allocator.total_reserved()
        factory.release(replica)
        ctx.sim.run_until_idle()
        assert ctx.allocator.total_reserved() < held
        assert factory.released == 1

    def test_loading_speedup_shortens_init(self, ctx):
        fast_factory, _, fast_metrics = make_factory(
            ctx, loading_speedup=4.0, startup_overhead=0.0
        )
        plan = ctx.ladder(LLAMA2_7B, (2, 4)).plan(2)
        fast_factory.deploy(ctx.profile(LLAMA2_7B), plan)
        ctx.sim.run_until_idle()
        fast_init = fast_metrics.events[-1].init_time

        slow_factory, _, slow_metrics = make_factory(
            ctx, loading_speedup=1.0, startup_overhead=0.0
        )
        slow_factory.deploy(ctx.profile(LLAMA2_7B), plan)
        ctx.sim.run_until_idle()
        assert slow_metrics.events[-1].init_time > fast_init


class TestFlexPipeSystem:
    def test_construction_and_introspection(self, ctx):
        system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=1)
        assert system.current_granularity(LLAMA2_7B.name) == 4
        assert system.refactor_counts() == {LLAMA2_7B.name: 0}
        system.shutdown()

    def test_start_deploys_initial_replicas(self, ctx):
        system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=2)
        system.start()
        ctx.sim.run(until=60.0)
        assert len(system.routers[LLAMA2_7B.name].active_replicas) == 2
        system.shutdown()

    def test_submit_requires_known_model(self, ctx):
        system = FlexPipeSystem(ctx, [LLAMA2_7B])
        sampler = RequestSampler("OPT-66B", RandomStreams(0).stream("r"))
        with pytest.raises(KeyError):
            system.submit(sampler.sample(0.0))
        system.shutdown()

    def test_reset_measurement_epoch_zeroes_counters(self, ctx):
        system = FlexPipeSystem(ctx, [LLAMA2_7B], initial_replicas=1)
        system.start()
        ctx.sim.run(until=60.0)
        for gpu in ctx.cluster.gpus:
            gpu.busy_seconds = 123.0
        system.reset_measurement_epoch()
        assert all(g.busy_seconds == 0.0 for g in ctx.cluster.gpus)
        system.shutdown()

    def test_ablation_flags_wire_through(self, ctx):
        system = FlexPipeSystem(
            ctx,
            [LLAMA2_7B],
            enable_refactoring=False,
            enable_warm_cache=False,
            enable_hrg=False,
            enable_affinity=False,
        )
        assert system.warm_cache is None
        assert not system.enable_refactoring
        assert not system.coordinator.use_hrg
        assert not system.coordinator.use_affinity
        system.shutdown()

    def test_initial_stages_snap_to_feasible_rung(self, ctx):
        # OPT-66B has no 1-stage rung; requesting coarse snaps to a legal one.
        config = FlexPipeConfig(stage_counts=(2, 4, 8), initial_stages=2)
        system = FlexPipeSystem(ctx, [OPT_66B], config=config)
        assert system.current_granularity(OPT_66B.name) in (2, 4, 8)
        system.shutdown()


class TestMeasurementEpoch:
    """_epoch_start is initialised at construction, not lazily on reset."""

    class _Dummy(ServingSystem):
        name = "dummy"

        def start(self) -> None:
            pass

    def test_summary_without_epoch_reset(self, ctx):
        system = self._Dummy(ctx, [LLAMA2_7B])
        assert system._epoch_start == ctx.sim.now
        ctx.sim.run(until=5.0)
        summary = system.summarize(5.0)  # no reset_measurement_epoch taken
        assert summary.offered == 0
        system.shutdown()

    def test_epoch_start_counts_from_construction_time(self, ctx):
        system = self._Dummy(ctx, [LLAMA2_7B])
        system.metrics.on_submit(SimpleNamespace(arrival_time=1.0))
        ctx.sim.run(until=2.0)
        assert system.summarize(2.0).offered == 1
        system.shutdown()

    def test_reset_moves_the_measured_window(self, ctx):
        system = self._Dummy(ctx, [LLAMA2_7B])
        system.metrics.on_submit(SimpleNamespace(arrival_time=1.0))
        ctx.sim.run(until=5.0)
        system.reset_measurement_epoch()
        assert system._epoch_start == 5.0
        system.metrics.on_submit(SimpleNamespace(arrival_time=6.0))
        ctx.sim.run(until=8.0)
        summary = system.summarize(3.0)
        assert summary.offered == 1  # only the post-reset arrival counts
        system.shutdown()
