"""Tests for the experiment harness and system factories."""

from __future__ import annotations

import pytest

from repro.experiments.common import (
    ExperimentConfig,
    build_environment,
    make_arrival_process,
)
from repro.experiments.systems import make_system
from repro.simulation.randomness import RandomStreams
from repro.workloads.arrivals import GammaArrivals, MMPPArrivals, PoissonArrivals


class TestExperimentConfig:
    def test_defaults_match_paper_baseline(self):
        cfg = ExperimentConfig()
        assert cfg.qps == 20.0  # §9.1: "baseline of 20 QPS"
        assert cfg.model == "OPT-66B"

    def test_specs_include_background_model(self):
        cfg = ExperimentConfig(background_model="BERT-21B")
        assert [s.name for s in cfg.specs] == ["OPT-66B", "BERT-21B"]
        assert len(ExperimentConfig().specs) == 1

    def test_unknown_cluster_kind_rejected(self):
        with pytest.raises(ValueError):
            build_environment(ExperimentConfig(cluster="exotic"))

    def test_build_environment_warms_fragmentation(self):
        sim, cluster, streams, frag = build_environment(ExperimentConfig())
        assert frag is not None
        assert cluster.subscription_rate() > 1.0
        frag.stop()

    def test_fragmentation_can_be_disabled(self):
        _, cluster, _, frag = build_environment(
            ExperimentConfig(fragmentation=False)
        )
        assert frag is None
        assert cluster.subscription_rate() == 0.0


class TestArrivalRouting:
    def test_cv_one_is_poisson(self):
        cfg = ExperimentConfig(cv=1.0)
        proc = make_arrival_process(cfg, RandomStreams(0))
        assert isinstance(proc, PoissonArrivals)

    def test_high_cv_uses_mmpp_bursts_by_default(self):
        cfg = ExperimentConfig(cv=4.0)
        proc = make_arrival_process(cfg, RandomStreams(0))
        assert isinstance(proc, MMPPArrivals)
        assert proc.cv == pytest.approx(4.0, rel=0.05)

    def test_gamma_when_mmpp_disabled(self):
        cfg = ExperimentConfig(cv=4.0, use_mmpp=False)
        proc = make_arrival_process(cfg, RandomStreams(0))
        assert isinstance(proc, GammaArrivals)

    def test_sub_poisson_cv_uses_gamma(self):
        cfg = ExperimentConfig(cv=0.1)
        proc = make_arrival_process(cfg, RandomStreams(0))
        assert isinstance(proc, GammaArrivals)


class TestFactories:
    def test_unknown_system_raises_with_options(self, ctx):
        with pytest.raises(KeyError, match="available"):
            make_system("vLLM", ctx, ExperimentConfig())

    def test_make_system_builds_each(self, ctx):
        cfg = ExperimentConfig(cluster="small", fragmentation=False, qps=5.0)
        for name in ("FlexPipe", "AlpaServe", "MuxServe", "ServerlessLLM", "Tetris"):
            system = make_system(name, ctx, cfg)
            assert system.name == name
            system.shutdown()
