"""Live in-place transitions, preemptible prepared claims, and elastic
share contracts: the executor/allocator mechanics plus the auditor and
fuzzer coverage that watches them."""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from types import SimpleNamespace

import pytest

from repro.cluster.allocator import AllocationError
from repro.metrics.collector import MetricsCollector, RunSummary
from repro.partitioning.ladder import GranularityLadder
from repro.pipeline.batching import BatcherConfig
from repro.pipeline.replica import PipelineReplica, ReplicaState
from repro.refactoring.executor import (
    InPlaceTransition,
    RefactoringExecutor,
    plan_inplace_delta,
)
from repro.scaling.warm_cache import HostParamCache
from repro.scenarios.driver import TenantQoS
from repro.scenarios.library import ELASTIC_CONTRACTS
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.randomness import RandomStreams
from repro.validation.auditor import InvariantAuditor
from repro.validation.chaos import ChaosCase, paper_case
from repro.validation.migration_fuzz import (
    check_inplace_delta,
    fuzz_inplace_round,
    random_groups,
)
from repro.workloads.requests import RequestSampler

GB = 2**30

# Priorities for the preemption tests: the refactoring tenant is
# batch-grade so an interactive claimant can cancel its preparation.
PRIO = {"LLAMA2-7B": 2, "it": 0}


def _stub_auditor(ctx, executors=None):
    """An auditor over just the allocator/sim/executors surface."""
    execs = dict(executors or {})
    return InvariantAuditor(
        SimpleNamespace(
            ctx=SimpleNamespace(allocator=ctx.allocator),
            sim=ctx.sim,
            executors=lambda: execs,
        )
    )


def _enable_elastic(ctx, share_caps, *, reclaim=None, reclaim_bound=60.0):
    allocator = ctx.allocator
    allocator.enable_arbitration(
        lambda m: PRIO.get(m, 1), share_caps=share_caps
    )
    allocator.enable_elastic_shares(
        clock=lambda: ctx.sim.now, reclaim=reclaim, reclaim_bound=reclaim_bound
    )
    return allocator


def _fill_gpus(allocator, model="background-fill"):
    for gpu in allocator.cluster.gpus:
        if gpu.free_memory > 0:
            allocator.reserve_on(model, gpu, gpu.free_memory)


# ----------------------------------------------------------------------
# In-place transitions at the executor
# ----------------------------------------------------------------------
class TestInPlaceTransitions:
    def _deploy(self, ctx, profile, ladder, n_stages, completed):
        plan = ladder.plan(n_stages)
        mems = plan.memory_per_stage(8, profile.spec.kv_bytes_per_request)
        reservations = ctx.allocator.allocate_stages(profile.spec.name, mems)
        replica = PipelineReplica(
            ctx.sim,
            profile,
            plan,
            reservations,
            batcher_config=BatcherConfig(max_batch=8, max_wait=0.01),
            on_request_complete=completed.append,
        )
        replica.activate()
        return replica

    @pytest.fixture
    def setup(self, ctx, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        metrics = MetricsCollector("test")
        executor = RefactoringExecutor(
            ctx, llama_profile, ladder, metrics, warm_cache=HostParamCache()
        )
        executor.enable_inplace = True
        return ctx, ladder, metrics, executor

    def test_cost_model_prefers_inplace_for_split(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        # Both rung boundaries survive a 2->4 split, so the delta is far
        # below a full second copy and the cost model picks in-place.
        assert executor._choose_mode(replica, 4) == "inplace"

    def test_split_reuses_surviving_reservations(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        old_res = [s.reservation for s in replica.stages]
        assert executor.refactor(replica, 4)
        _, plan, _ = executor._transitions[replica.name]
        assert isinstance(plan, InPlaceTransition)
        # A 2->4 split keeps both old stage heads in place.
        assert len(plan.resized) == 2 and len(plan.fresh) == 2
        ctx.sim.run_until_idle()
        assert replica.plan.n_stages == 4
        assert executor.transitions_inplace == 1
        assert executor.transitions_chain == 0
        assert replica.inplace_swaps == 1
        new_res = [s.reservation for s in replica.stages]
        for reservation, _old_bytes, final in plan.resized:
            # The same StageReservation object serves the new chain,
            # trimmed to its target footprint once the old chain retired.
            assert reservation in old_res and reservation in new_res
            assert reservation.nbytes == pytest.approx(final)
        assert not executor._shrink_to

    def test_inplace_has_no_service_gap(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        sampler = RequestSampler("LLAMA2-7B", RandomStreams(0).stream("r"))
        for _ in range(4):
            replica.submit(sampler.sample(ctx.sim.now))
        assert executor.refactor(replica, 4)
        ctx.sim.run_until_idle()
        assert replica.state is ReplicaState.ACTIVE
        assert len(completed) == 4
        assert len(executor.inplace_spans) == 1
        auditor = _stub_auditor(ctx, {"LLAMA2-7B": executor})
        assert auditor._check_inplace_service() == []
        assert auditor._check_prepared_claims() == []

    def test_abort_on_cordon_rolls_back_to_serving_chain(
        self, setup, llama_profile
    ):
        ctx, ladder, metrics, executor = setup
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        assert executor.refactor(replica, 4)
        _, plan, _ = executor._transitions[replica.name]
        assert executor.abort_on_cordon(plan.fresh[0].gpu) == 1
        assert executor.transitions_aborted == 1
        assert plan.token in executor.aborted_tokens
        # The old chain never stopped serving: 2 stages, grown shared
        # reservations resized back, fresh stages returned.
        assert replica.state is ReplicaState.ACTIVE
        assert replica.plan.n_stages == 2
        for reservation, old_bytes, _final in plan.resized:
            assert reservation.nbytes == pytest.approx(old_bytes)
        assert all(r.released for r in plan.fresh)
        sampler = RequestSampler("LLAMA2-7B", RandomStreams(0).stream("r"))
        replica.submit(sampler.sample(ctx.sim.now))
        ctx.sim.run_until_idle()
        assert executor.transitions_completed == 0
        assert len(completed) == 1
        assert _stub_auditor(
            ctx, {"LLAMA2-7B": executor}
        )._check_prepared_claims() == []

    def test_swap_stages_inplace_requires_active(self, setup, llama_profile):
        ctx, ladder, metrics, executor = setup
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        reservations = [s.reservation for s in replica.stages]
        replica.drain()
        assert replica.state is not ReplicaState.ACTIVE
        with pytest.raises(RuntimeError, match="swap_stages_inplace"):
            replica.swap_stages_inplace(replica.plan, reservations)

    def test_chain_mode_still_counts_as_chain(self, ctx, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        executor = RefactoringExecutor(
            ctx, llama_profile, ladder, MetricsCollector("test")
        )
        assert not executor.enable_inplace
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        ctx.sim.run_until_idle()
        assert executor.transitions_chain == 1
        assert executor.transitions_inplace == 0


# ----------------------------------------------------------------------
# Preemptible prepared claims
# ----------------------------------------------------------------------
class TestPreparedClaims:
    @pytest.fixture
    def setup(self, ctx, llama_profile):
        ladder = GranularityLadder(llama_profile, stage_counts=(2, 4))
        executor = RefactoringExecutor(
            ctx, llama_profile, ladder, MetricsCollector("test")
        )
        executor.preemptible_claims = True
        return ctx, ladder, executor

    def _deploy(self, ctx, profile, ladder, n_stages, completed):
        return TestInPlaceTransitions._deploy(
            self, ctx, profile, ladder, n_stages, completed
        )

    def test_preparation_registers_prepared_chain_claim(
        self, setup, llama_profile
    ):
        ctx, ladder, executor = setup
        ctx.allocator.enable_arbitration(lambda m: PRIO.get(m, 1))
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        _, plan, _ = executor._transitions[replica.name]
        claim = plan.claim
        assert claim is not None and claim.kind == "prepared-chain"
        assert claim in ctx.allocator.pending_claims()
        ctx.sim.run_until_idle()
        # The switch resolved the claim: it served, so it is now active.
        assert claim.state == "active"
        assert claim not in ctx.allocator.pending_claims()

    def test_preemption_cancels_preparation_old_chain_serves(
        self, setup, llama_profile
    ):
        ctx, ladder, executor = setup
        allocator = ctx.allocator
        allocator.enable_arbitration(lambda m: PRIO.get(m, 1))
        completed = []
        replica = self._deploy(ctx, llama_profile, ladder, 2, completed)
        assert executor.refactor(replica, 4)
        _, plan, _ = executor._transitions[replica.name]
        _fill_gpus(allocator)
        # No free fragment remains; the interactive deploy must win the
        # batch tenant's in-flight preparation.
        it_res = allocator.allocate_stages("it", [2 * GB])
        assert len(it_res) == 1
        assert plan.claim.state == "preempted"
        assert allocator.preemptions[0].claim.kind == "prepared-chain"
        assert executor.transitions_aborted == 1
        assert plan.token in executor.aborted_tokens
        # The executor rolled back to the still-serving old chain.
        assert replica.state is ReplicaState.ACTIVE
        assert replica.plan.n_stages == 2
        sampler = RequestSampler("LLAMA2-7B", RandomStreams(0).stream("r"))
        replica.submit(sampler.sample(ctx.sim.now))
        ctx.sim.run_until_idle()
        assert executor.transitions_completed == 0
        assert len(completed) == 1
        auditor = _stub_auditor(ctx, {"LLAMA2-7B": executor})
        assert auditor._check_prepared_claims() == []

    def test_cordon_resolves_prepared_claim(self, setup, llama_profile):
        ctx, ladder, executor = setup
        ctx.allocator.enable_arbitration(lambda m: PRIO.get(m, 1))
        replica = self._deploy(ctx, llama_profile, ladder, 2, [])
        assert executor.refactor(replica, 4)
        _, plan, _ = executor._transitions[replica.name]
        assert executor.abort_on_cordon(plan.reservations[0].gpu) == 1
        assert plan.claim.state == "released"
        assert plan.claim not in ctx.allocator.pending_claims()


# ----------------------------------------------------------------------
# Elastic share contracts at the allocator
# ----------------------------------------------------------------------
class TestBorrowLedger:
    def test_static_caps_reject_what_elastic_borrows(self, ctx):
        allocator = ctx.allocator
        fleet = allocator.fleet_memory()
        allocator.enable_arbitration(
            lambda m: PRIO.get(m, 1),
            share_caps={"it": 0.1, "batch": 0.5},
        )
        limit = 0.1 * fleet
        allocator.allocate_stages("it", [0.6 * limit, 0.4 * limit])
        with pytest.raises(AllocationError, match="share cap"):
            allocator.allocate_stages("it", [0.05 * fleet])

    def test_borrow_then_return_balances_the_ledger(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.5})
        fleet = allocator.fleet_memory()
        limit = 0.1 * fleet
        allocator.allocate_stages("it", [0.6 * limit, 0.4 * limit])
        extra = allocator.allocate_stages("it", [0.05 * fleet])
        assert len(extra) == 1
        assert allocator._borrowed_total("it") == pytest.approx(0.05 * fleet)
        assert allocator._borrows["it"] == {
            "batch": pytest.approx(0.05 * fleet)
        }
        assert allocator.borrow_events["it"] == 1
        assert allocator.bytes_borrowed["it"] == pytest.approx(0.05 * fleet)
        allocator.release(extra[0])
        assert not allocator._borrows
        assert allocator.bytes_returned["it"] == pytest.approx(
            allocator.bytes_borrowed["it"]
        )
        auditor = _stub_auditor(ctx)
        assert auditor._check_borrow_accounting() == []
        assert auditor._check_borrow_quiesce() == []

    def test_borrow_infeasible_beyond_lendable_capacity(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.05})
        fleet = allocator.fleet_memory()
        limit = 0.1 * fleet
        allocator.allocate_stages("it", [0.6 * limit, 0.4 * limit])
        with pytest.raises(AllocationError, match="elastic share cap"):
            allocator.allocate_stages("it", [0.07 * fleet])

    def test_uncapped_tenants_neither_lend_nor_borrow(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1})
        fleet = allocator.fleet_memory()
        limit = 0.1 * fleet
        gpu = allocator.cluster.gpus[0]
        # An uncapped tenant holds bytes without ever entering the ledger.
        allocator.reserve_on("free", gpu, 0.5 * gpu.spec.memory)
        assert "free" not in allocator._borrows
        allocator.allocate_stages("it", [0.6 * limit, 0.4 * limit])
        # No other *capped* tenant exists, so there is nothing to borrow.
        with pytest.raises(AllocationError, match="elastic share cap"):
            allocator.allocate_stages("it", [0.05 * fleet])

    def test_lender_demand_presses_borrower_and_resolves(self, ctx):
        reclaims = []
        allocator = _enable_elastic(
            ctx,
            {"it": 0.1, "batch": 0.3},
            reclaim=lambda borrower, nbytes: reclaims.append(
                (borrower, nbytes)
            ),
        )
        fleet = allocator.fleet_memory()
        allocator.allocate_stages("it", [0.06 * fleet, 0.04 * fleet])
        borrowed = allocator.allocate_stages("it", [0.05 * fleet])
        assert allocator._lent_out("batch") == pytest.approx(0.05 * fleet)
        # The lender's own demand returns but cannot place while its
        # headroom is lent out: the failure presses its borrowers.
        _fill_gpus(allocator)
        with pytest.raises(AllocationError):
            allocator.allocate_stages("batch", [2 * GB])
        demands = allocator.open_reclaim_demands()
        assert len(demands) == 1 and demands[0].lender == "batch"
        assert demands[0].nbytes == pytest.approx(2 * GB)
        assert reclaims == [("it", pytest.approx(2 * GB))]
        # The pressed lender has an open demand, so the books still audit.
        assert _stub_auditor(ctx)._check_borrow_accounting() == []
        # Draining the borrower's excess repays the pressed lender and
        # resolves the demand.
        allocator.release(borrowed[0])
        assert allocator.open_reclaim_demands() == []
        assert demands[0].resolved_at is not None

    def test_share_headroom_includes_lendable_contracts(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.3})
        fleet = allocator.fleet_memory()
        assert allocator.share_headroom("it") == pytest.approx(0.4 * fleet)
        assert allocator.share_headroom("free") == float("inf")


# ----------------------------------------------------------------------
# Auditor checks for the new machinery
# ----------------------------------------------------------------------
class TestElasticAuditor:
    def test_cooked_ledger_mismatch_flagged(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.5})
        allocator._borrows["it"] = {"batch": 5 * GB}  # no backing overage
        out = _stub_auditor(ctx)._check_borrow_accounting()
        assert any(v.invariant == "borrow-accounting" for v in out)

    def test_uncapped_tenant_with_ledger_flagged(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1})
        allocator._borrows["free"] = {"it": 1 * GB}
        out = _stub_auditor(ctx)._check_borrow_accounting()
        assert any("uncapped" in v.detail for v in out)

    def test_uncovered_overage_peak_flagged(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1})
        allocator.tenant_overage_peak["it"] = 1 * GB
        out = _stub_auditor(ctx)._check_borrow_accounting()
        assert any("beyond what the borrow ledger" in v.detail for v in out)

    def test_overcommitted_lender_without_demand_flagged(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.3})
        fleet = allocator.fleet_memory()
        allocator._borrows["it"] = {"batch": 0.05 * fleet}
        allocator.tenant_reserved["it"] = 0.15 * fleet
        allocator.tenant_reserved["batch"] = 0.29 * fleet
        out = _stub_auditor(ctx)._check_borrow_accounting()
        assert any("no open reclaim demand" in v.detail for v in out)

    def test_stale_reclaim_demand_breaks_latency_bound(self, ctx):
        reclaim_bound = 10.0
        allocator = _enable_elastic(
            ctx, {"it": 0.1, "batch": 0.3}, reclaim_bound=reclaim_bound
        )
        fleet = allocator.fleet_memory()
        allocator.allocate_stages("it", [0.06 * fleet, 0.04 * fleet])
        allocator.allocate_stages("it", [0.05 * fleet])
        _fill_gpus(allocator)
        with pytest.raises(AllocationError):
            allocator.allocate_stages("batch", [2 * GB])
        assert allocator.open_reclaim_demands()
        auditor = _stub_auditor(ctx)
        assert not any(
            v.invariant == "borrow-reclaim-latency"
            for v in auditor._check_borrow_accounting()
        )
        ctx.sim.schedule(reclaim_bound + 1.0, lambda: None)
        ctx.sim.run_until_idle()
        out = auditor._check_borrow_accounting()
        assert any(v.invariant == "borrow-reclaim-latency" for v in out)

    def test_quiesce_requires_every_byte_returned(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.5})
        allocator.bytes_borrowed["it"] = 8 * GB
        allocator.bytes_returned["it"] = 6 * GB
        out = _stub_auditor(ctx)._check_borrow_quiesce()
        assert any("returned" in v.detail for v in out)

    def test_elastic_share_cap_covered_by_ledger(self, ctx):
        allocator = _enable_elastic(ctx, {"it": 0.1, "batch": 0.5})
        fleet = allocator.fleet_memory()
        allocator.tenant_reserved["it"] = 0.15 * fleet
        allocator._borrows["it"] = {"batch": 0.05 * fleet}
        auditor = _stub_auditor(ctx)
        assert auditor._check_share_caps() == []
        # Beyond what the ledger covers the cap violation stands.
        allocator.tenant_reserved["it"] = 0.2 * fleet
        out = auditor._check_share_caps()
        assert any(v.invariant == "share-cap" for v in out)

    def test_switched_and_aborted_tokens_must_be_disjoint(self, ctx):
        executor = SimpleNamespace(
            switched_tokens={1, 2},
            aborted_tokens={2},
            inplace_spans=[],
        )
        out = _stub_auditor(
            ctx, {"LLAMA2-7B": executor}
        )._check_prepared_claims()
        assert any(v.invariant == "prepared-claim" for v in out)

    def test_state_change_inside_inplace_span_flagged(self, ctx):
        replica = SimpleNamespace(
            name="r0", state_history=[(1.5, ReplicaState.DRAINING)]
        )
        executor = SimpleNamespace(
            switched_tokens=set(),
            aborted_tokens=set(),
            inplace_spans=[(replica, 1.0, 2.0)],
        )
        out = _stub_auditor(
            ctx, {"LLAMA2-7B": executor}
        )._check_inplace_service()
        assert any(v.invariant == "inplace-service-gap" for v in out)
        # The same history outside the span is fine.
        executor.inplace_spans = [(replica, 2.0, 3.0)]
        assert _stub_auditor(
            ctx, {"LLAMA2-7B": executor}
        )._check_inplace_service() == []


# ----------------------------------------------------------------------
# In-place delta oracle in the migration fuzzer
# ----------------------------------------------------------------------
class TestInplaceFuzzOracle:
    UNIT_PARAMS = [4.0, 4.0, 4.0, 4.0]
    UNIT_KV = [1.0, 1.0, 1.0, 1.0]
    OLD = [(0, 2), (2, 4)]
    NEW = [(0, 1), (1, 2), (2, 4)]

    def test_oracle_accepts_executor_plan(self):
        deltas = plan_inplace_delta(
            self.OLD, self.NEW, self.UNIT_PARAMS, self.UNIT_KV
        )
        assert (
            check_inplace_delta(
                self.OLD, self.NEW, self.UNIT_PARAMS, self.UNIT_KV, deltas
            )
            == []
        )

    def test_oracle_detects_poisoned_delta(self):
        deltas = plan_inplace_delta(
            self.OLD, self.NEW, self.UNIT_PARAMS, self.UNIT_KV
        )
        poisoned = [dict(d) for d in deltas]
        target = next(d for d in poisoned if d["reused"])
        target["param_delta_bytes"] += target["resident_param_bytes"]
        out = check_inplace_delta(
            self.OLD, self.NEW, self.UNIT_PARAMS, self.UNIT_KV, poisoned
        )
        assert out and all(v.invariant == "inplace-delta" for v in out)

    def test_random_groups_partition_the_lattice(self):
        rng = RandomStreams(7).stream("t")
        for _ in range(20):
            groups = random_groups(rng, 12)
            assert groups[0][0] == 0 and groups[-1][1] == 12
            for (_, hi), (lo, _) in zip(groups, groups[1:]):
                assert hi == lo

    def test_fuzz_round_is_clean_and_schedules_items(self):
        rng = RandomStreams(0).stream("inplace-fuzz")
        violations, n_items = fuzz_inplace_round(rng)
        assert violations == []
        assert n_items > 0


# ----------------------------------------------------------------------
# Chaos/scenario configuration surface
# ----------------------------------------------------------------------
class TestElasticConfig:
    CLASSED = (("LLAMA2-7B", "interactive"),)

    def test_chaos_caps_must_name_a_tenant(self):
        with pytest.raises(ValueError):
            ChaosCase(
                slo_classes=self.CLASSED, share_caps=(("NOPE", 0.5),)
            )

    def test_chaos_caps_must_be_a_fraction(self):
        with pytest.raises(ValueError):
            ChaosCase(
                slo_classes=self.CLASSED, share_caps=(("LLAMA2-7B", 1.5),)
            )

    def test_chaos_elastic_needs_classes(self):
        with pytest.raises(ValueError):
            ChaosCase(elastic=True)

    def test_paper_case_arms_caps_and_elastic(self):
        armed = [
            paper_case("FlexPipe", seed)
            for seed in range(6)
            if paper_case("FlexPipe", seed).share_caps
        ]
        assert armed  # the rotation includes capped fleets
        for case in armed:
            assert case.elastic
            assert set(case.caps_of) <= set(case.models)
        # ...and the OPT-66B fleet stays uncapped and static.
        uncapped = [
            paper_case("FlexPipe", seed)
            for seed in range(6)
            if not paper_case("FlexPipe", seed).share_caps
        ]
        assert uncapped and all(not c.elastic for c in uncapped)

    def test_scenario_spec_elastic_round_trips(self):
        assert ELASTIC_CONTRACTS.elastic
        clone = ScenarioSpec.from_dict(ELASTIC_CONTRACTS.to_dict())
        assert clone.elastic and clone.name == ELASTIC_CONTRACTS.name
        assert ELASTIC_CONTRACTS.quick().elastic

    def test_qos_rows_carry_contract_counters(self):
        tenant_defaults = {
            f.name: f.default for f in dataclass_fields(TenantQoS)
        }
        summary_defaults = {
            f.name: f.default for f in dataclass_fields(RunSummary)
        }
        for counter in (
            "preemptions_won",
            "preemptions_lost",
            "borrows",
            "reclaims",
        ):
            assert tenant_defaults[counter] == 0
            assert summary_defaults[counter] == 0
