"""Tests for the counted Resource / Store simulation primitives."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.engine import Simulator
from repro.simulation.resources import Resource, Store


class TestResource:
    def test_immediate_grant_when_free(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        fired = []
        res.acquire(1, lambda: fired.append(sim.now))
        sim.run_until_idle()
        assert fired == [0.0]
        assert res.in_use == 1
        assert res.available == 1

    def test_waiters_block_until_release(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []
        res.acquire(1, lambda: order.append("a"))
        res.acquire(1, lambda: order.append("b"))
        sim.run_until_idle()
        assert order == ["a"]
        sim.schedule(5.0, res.release, 1)
        sim.run_until_idle()
        assert order == ["a", "b"]

    def test_fifo_order_among_waiters(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        order = []
        for name in "abc":
            res.acquire(1, lambda n=name: order.append(n))
        sim.run_until_idle()
        res.release(1)
        sim.run_until_idle()
        res.release(1)
        sim.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_head_of_line_blocking(self):
        """A big request at the head blocks smaller ones behind it (FIFO)."""
        sim = Simulator()
        res = Resource(sim, capacity=2)
        order = []
        res.acquire(2, lambda: order.append("big1"))
        res.acquire(2, lambda: order.append("big2"))
        res.acquire(1, lambda: order.append("small"))
        sim.run_until_idle()
        assert order == ["big1"]  # small waits behind big2 even though 0 free

    def test_wait_time_accounting(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.acquire(1, lambda: None)
        res.acquire(1, lambda: None)
        sim.run_until_idle()
        sim.schedule(10.0, res.release, 1)
        sim.run_until_idle()
        assert res.grants == 2
        assert res.mean_wait() == pytest.approx(5.0)  # (0 + 10) / 2

    def test_mean_wait_zero_before_grants(self):
        assert Resource(Simulator(), 1).mean_wait() == 0.0

    def test_acquire_more_than_capacity_rejected(self):
        res = Resource(Simulator(), capacity=2)
        with pytest.raises(ValueError, match="cannot acquire"):
            res.acquire(3, lambda: None)

    def test_over_release_rejected(self):
        res = Resource(Simulator(), capacity=2)
        with pytest.raises(ValueError, match="release"):
            res.release(1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            Resource(Simulator(), capacity=0)

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.acquire(1, lambda: None)
        res.acquire(1, lambda: None)
        res.acquire(1, lambda: None)
        sim.run_until_idle()
        assert res.queue_length == 2

    @given(
        requests=st.lists(st.integers(min_value=1, max_value=3), min_size=1, max_size=20)
    )
    @settings(max_examples=60, deadline=None)
    def test_all_requests_eventually_granted(self, requests):
        """Conservation: with releases, every acquire is granted exactly once."""
        sim = Simulator()
        res = Resource(sim, capacity=3)
        granted = []

        def make_handler(idx, units):
            def fire():
                granted.append(idx)
                sim.schedule(1.0, res.release, units)

            return fire

        for i, units in enumerate(requests):
            res.acquire(units, make_handler(i, units))
        sim.run_until_idle()
        assert sorted(granted) == list(range(len(requests)))
        assert res.in_use == 0


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []
        store.put("x")
        store.get(got.append)
        sim.run_until_idle()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []
        store.get(got.append)
        sim.run_until_idle()
        assert got == []
        assert store.waiting_getters == 1
        store.put(42)
        sim.run_until_idle()
        assert got == [42]

    def test_fifo_items_and_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []
        store.get(lambda item: got.append(("g1", item)))
        store.get(lambda item: got.append(("g2", item)))
        store.put("a")
        store.put("b")
        sim.run_until_idle()
        assert got == [("g1", "a"), ("g2", "b")]

    def test_len_counts_buffered_items(self):
        sim = Simulator()
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        store.get(lambda _: None)
        sim.run_until_idle()
        assert len(store) == 1
        assert store.puts == 2
        assert store.gets == 1
