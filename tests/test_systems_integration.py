"""End-to-end integration tests: every serving system on a live workload.

These run short simulations on the full paper cluster with fragmentation,
exercising the complete stack (allocation -> loading -> batching ->
pipelined execution -> scaling/refactoring -> metrics).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import ExperimentConfig, run_system
from repro.experiments.systems import (
    SYSTEM_FACTORIES,
    make_alpaserve,
    make_flexpipe,
    make_muxserve,
    make_serverlessllm,
    make_tetris,
    replicas_for_fraction,
)

FAST = dict(
    duration=60.0,
    settle_time=120.0,
    warmup_time=20.0,
    drain_time=20.0,
    qps=10.0,
)


@pytest.fixture(scope="module")
def flexpipe_run():
    cfg = ExperimentConfig(cv=2.0, **FAST)
    return run_system(make_flexpipe, cfg)


class TestFlexPipeEndToEnd:
    def test_serves_all_requests(self, flexpipe_run):
        summary, _ = flexpipe_run
        assert summary.offered > 100
        assert summary.completed == summary.offered

    def test_goodput_positive(self, flexpipe_run):
        # This deliberately under-provisioned short run stresses the scaling
        # path; the assertion is that the system keeps making goodput, not
        # that it holds the SLO universally.
        summary, _ = flexpipe_run
        assert summary.goodput_rate > 0.1

    def test_latency_breakdown_consistent(self, flexpipe_run):
        summary, _ = flexpipe_run
        assert summary.mean_latency == pytest.approx(
            summary.breakdown.total, rel=0.01
        )
        assert summary.breakdown.communication > 0

    def test_utilization_in_unit_range(self, flexpipe_run):
        summary, _ = flexpipe_run
        assert 0.0 < summary.gpu_utilization <= 1.0
        assert summary.gpus_used >= 4

    def test_consistency_protocol_exercised_on_refactors(self, flexpipe_run):
        summary, system = flexpipe_run
        checks = sum(
            state.executor.consistency_checks
            for state in system._models.values()
        )
        assert checks >= summary.refactor_count


class TestAllSystemsEndToEnd:
    @pytest.mark.parametrize("name", sorted(SYSTEM_FACTORIES))
    def test_system_completes_workload(self, name):
        cfg = ExperimentConfig(cv=1.0, **FAST)
        summary, system = run_system(SYSTEM_FACTORIES[name], cfg)
        assert summary.completed > 0, f"{name} completed nothing"
        assert summary.completed >= 0.9 * summary.offered
        assert summary.goodput_rate > 0.3
        system_names = {r.system for r in [summary]}
        assert system_names == {system.name}

    def test_static_systems_never_scale(self):
        cfg = ExperimentConfig(cv=2.0, **FAST)
        for factory in (make_alpaserve, make_muxserve):
            summary, _ = run_system(factory, cfg)
            assert summary.scale_out_count == 0
            assert summary.refactor_count == 0

    def test_reactive_systems_scale_out_under_load(self):
        cfg = ExperimentConfig(cv=2.0, qps=20.0, duration=90.0,
                               settle_time=120.0, warmup_time=20.0, drain_time=20.0)
        summary, _ = run_system(make_serverlessllm, cfg)
        assert summary.scale_out_count > 0

    def test_flexpipe_refactors_under_cv_shift(self):
        cfg = ExperimentConfig(cv=4.0, qps=15.0, duration=90.0,
                               settle_time=120.0, warmup_time=20.0, drain_time=20.0)
        summary, system = run_system(make_flexpipe, cfg)
        assert summary.refactor_count > 0
        granularity = system.current_granularity(cfg.model)
        assert granularity >= 4  # moved away from nothing; sanity

    def test_muxserve_packs_fewer_gpus_than_alpaserve(self):
        cfg = ExperimentConfig(cv=1.0, background_model="BERT-21B", **FAST)
        alpa, _ = run_system(make_alpaserve, cfg)
        mux, _ = run_system(make_muxserve, cfg)
        assert mux.gpus_used <= alpa.gpus_used

    def test_same_seed_same_workload_across_systems(self):
        cfg = ExperimentConfig(cv=1.0, **FAST)
        a, _ = run_system(make_alpaserve, cfg)
        b, _ = run_system(make_tetris, cfg)
        assert a.offered == b.offered  # identical arrival stream


class TestAblations:
    def test_refactoring_off_never_refactors(self):
        cfg = ExperimentConfig(cv=4.0, **FAST)
        summary, _ = run_system(
            lambda ctx, c: make_flexpipe(ctx, c, enable_refactoring=False), cfg
        )
        assert summary.refactor_count == 0

    def test_warm_cache_off_disables_warm_starts(self):
        cfg = ExperimentConfig(cv=4.0, **FAST)
        summary, _ = run_system(
            lambda ctx, c: make_flexpipe(ctx, c, enable_warm_cache=False), cfg
        )
        assert summary.warm_start_rate == 0.0


class TestProvisioning:
    def test_static_fraction_gets_more_replicas(self, ctx):
        cfg = ExperimentConfig()
        low = replicas_for_fraction(ctx, cfg, 4, 0.30)
        high = replicas_for_fraction(ctx, cfg, 4, 0.75)
        assert high >= low >= 1
