"""Tests for the Eq. 1 G/G/S model and the Insight-3 depth rule."""

from __future__ import annotations

import math

import pytest

from repro.queueing.ggs import GGSModel, optimal_stage_count, pipeline_delay


class TestPipelineDelay:
    def test_formula(self):
        assert pipeline_delay(4, 0.1, 0.01) == pytest.approx(4 * 0.1 + 3 * 0.01)

    def test_single_stage_has_no_hops(self):
        assert pipeline_delay(1, 0.1, 5.0) == pytest.approx(0.1)

    def test_invalid_stage_count(self):
        with pytest.raises(ValueError):
            pipeline_delay(0, 0.1, 0.01)


class TestGGSModel:
    def test_queue_latency_grows_with_cv(self):
        base = dict(arrival_rate=8.0, stage_service_rates=(10.0,) * 4)
        low = GGSModel(cv_arrival=0.5, **base)
        high = GGSModel(cv_arrival=4.0, **base)
        assert high.queue_latency() > low.queue_latency()

    def test_unstable_system_diverges(self):
        model = GGSModel(
            arrival_rate=12.0, cv_arrival=1.0, stage_service_rates=(10.0,) * 4
        )
        assert math.isinf(model.queue_latency())
        assert math.isinf(model.congestion_delay())

    def test_congestion_sums_per_stage(self):
        model = GGSModel(
            arrival_rate=5.0, cv_arrival=1.0, stage_service_rates=(10.0, 20.0)
        )
        expected = 5.0 / 5.0 + 5.0 / 15.0
        assert model.congestion_delay() == pytest.approx(expected)

    def test_utilization_is_bottleneck_based(self):
        model = GGSModel(
            arrival_rate=5.0, cv_arrival=1.0, stage_service_rates=(10.0, 6.0)
        )
        assert model.utilization == pytest.approx(5.0 / 6.0)

    def test_finer_stages_win_under_high_cv(self):
        """The §3.3 effect: at CV>3 deeper pipelines (whose stages are
        proportionally faster) reduce total delay."""

        def model(n_stages, cv):
            # Splitting the model N ways multiplies stage service rate by N.
            return GGSModel(
                arrival_rate=8.0,
                cv_arrival=cv,
                stage_service_rates=(2.5 * n_stages,) * n_stages,
            )

        assert model(16, 6.0).total_delay() < model(4, 6.0).total_delay()

    def test_validation_errors(self):
        with pytest.raises(ValueError):
            GGSModel(arrival_rate=0.0, cv_arrival=1.0, stage_service_rates=(1.0,))
        with pytest.raises(ValueError):
            GGSModel(arrival_rate=1.0, cv_arrival=1.0, stage_service_rates=())
        with pytest.raises(ValueError):
            GGSModel(arrival_rate=1.0, cv_arrival=1.0, stage_service_rates=(0.0,))


class TestOptimalStageCount:
    def test_insight3_paper_anchor(self):
        """S ∝ sqrt(CV) with the paper's constant: 16 stages at CV=4."""
        assert optimal_stage_count(4.0) == 16
        assert optimal_stage_count(1.0) == 8

    def test_monotone_in_cv(self):
        picks = [optimal_stage_count(cv) for cv in (0.1, 1.0, 4.0, 16.0)]
        assert picks == sorted(picks)

    def test_zero_cv_picks_coarsest(self):
        assert optimal_stage_count(0.0) == 2

    def test_respects_candidate_set(self):
        assert optimal_stage_count(4.0, candidates=(4, 8)) == 8
