"""Documentation gates: link integrity, command drift, cli.md drift.

Docs rot in three ways: relative links break when files move, quoted
``repro ...`` examples drift when flags are renamed, and the generated
CLI reference goes stale when the argparse tree changes.  Each gets a
mechanical check here (no network — external URLs are not fetched).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import shlex

import pytest

from repro.cli import build_parser
from repro.docs import render_cli_markdown

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO / "README.md", *(REPO / "docs").glob("*.md")],
    key=lambda p: p.name,
)

LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```.*?```", re.S)
HEADING_RE = re.compile(r"^#+\s+(.*)$", re.M)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to hyphens, drop the rest."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip())
    text = text.lower().replace(" ", "-")
    return re.sub(r"[^a-z0-9_-]", "", text)


def _anchors(path: pathlib.Path) -> set[str]:
    return {github_slug(h) for h in HEADING_RE.findall(path.read_text())}


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_markdown_links_resolve(doc):
    text = FENCE_RE.sub("", doc.read_text())
    problems = []
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue  # external: not fetched (no network in CI)
        path_part, _, anchor = target.partition("#")
        resolved = (
            doc if not path_part else (doc.parent / path_part).resolve()
        )
        if not resolved.exists():
            problems.append(f"{target}: {resolved} does not exist")
            continue
        if anchor and resolved.suffix == ".md":
            if github_slug(anchor) not in _anchors(resolved):
                problems.append(f"{target}: no heading for #{anchor}")
    assert not problems, f"{doc.name}: " + "; ".join(problems)


# ----------------------------------------------------------------------
# Quoted `repro ...` commands must parse against the real CLI
# ----------------------------------------------------------------------
COMMAND_RE = re.compile(
    r"^\s*(?:PYTHONPATH=\S+\s+)?(?:python\s+-m\s+repro|repro)\s+(.+?)\s*(?:#.*)?$"
)


def _quoted_commands(doc: pathlib.Path) -> list[str]:
    """Every ``repro ...`` invocation in the file's fenced code blocks."""
    found = []
    for block in re.findall(r"```(?:bash|sh|console)?\n(.*?)```", doc.read_text(), re.S):
        for line in block.splitlines():
            m = COMMAND_RE.match(line)
            if m and "<" not in m.group(1):  # skip placeholder examples
                found.append(m.group(1))
    return found


def _apply_trace_sugar(argv: list[str]) -> list[str]:
    # Mirror repro.cli.main's `repro trace <scenario>` shorthand.
    if "trace" in argv:
        i = argv.index("trace")
        nxt = argv[i + 1] if i + 1 < len(argv) else None
        if nxt is not None and nxt not in (
            "run", "synth", "synth2019", "stats", "-h", "--help",
        ):
            argv = argv[: i + 1] + ["run"] + argv[i + 1 :]
    return argv


class _QuietParserError(Exception):
    pass


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_quoted_repro_commands_parse(doc, monkeypatch):
    parser = build_parser()
    # argparse exits on error; turn that into an assertable exception.
    monkeypatch.setattr(
        argparse.ArgumentParser,
        "error",
        lambda self, message: (_ for _ in ()).throw(_QuietParserError(message)),
    )
    failures = []
    for command in _quoted_commands(doc):
        argv = _apply_trace_sugar(shlex.split(command))
        try:
            parser.parse_args(argv)
        except _QuietParserError as exc:
            failures.append(f"`repro {command}`: {exc}")
    assert not failures, f"{doc.name} quotes stale commands: " + "; ".join(failures)


def test_readme_and_docs_quote_commands_at_all():
    # The drift gate is vacuous if extraction silently finds nothing.
    total = sum(len(_quoted_commands(d)) for d in DOC_FILES)
    assert total >= 5


# ----------------------------------------------------------------------
# docs/cli.md is generated: committed bytes must match the emitter
# ----------------------------------------------------------------------
def test_cli_reference_matches_argparse_tree():
    committed = (REPO / "docs" / "cli.md").read_text()
    assert committed == render_cli_markdown(), (
        "docs/cli.md is stale; regenerate with "
        "`python -m repro docs-cli --output docs/cli.md`"
    )


def test_cli_reference_covers_every_subcommand():
    rendered = render_cli_markdown()
    for action in build_parser()._actions:
        if isinstance(action, argparse._SubParsersAction):
            for name in action.choices:
                assert f"## `repro {name}`" in rendered
