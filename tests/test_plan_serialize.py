"""Tests for plan serialization and transition diffing."""

from __future__ import annotations

import json

import pytest

from repro.partitioning.ladder import GranularityLadder
from repro.partitioning.serialize import (
    diff_plans,
    plan_from_dict,
    plan_from_json,
    plan_to_dict,
    plan_to_json,
)


@pytest.fixture(scope="module")
def ladder(opt_profile):
    return GranularityLadder(opt_profile, stage_counts=(2, 4, 8, 16, 32))


class TestSerialization:
    def test_dict_shape(self, ladder):
        plan = ladder.plan(4)
        payload = plan_to_dict(plan)
        assert payload["model"] == plan.model_name
        assert payload["n_stages"] == 4
        assert len(payload["stages"]) == 4
        assert payload["stages"][0]["start"] == 0

    def test_json_roundtrip(self, ladder, opt_profile):
        plan = ladder.plan(8)
        text = plan_to_json(plan)
        back = plan_from_json(text, opt_profile)
        assert back.n_stages == plan.n_stages
        assert back.cuts == plan.cuts
        assert back.max_batch == plan.max_batch
        assert [s.param_bytes for s in back.stages] == pytest.approx(
            [s.param_bytes for s in plan.stages]
        )

    def test_json_file_roundtrip(self, ladder, opt_profile, tmp_path):
        plan = ladder.plan(4)
        path = tmp_path / "plan.json"
        plan_to_json(plan, path)
        back = plan_from_json(path, opt_profile)
        assert back.cuts == plan.cuts

    def test_wrong_model_rejected(self, ladder, llama_profile):
        payload = plan_to_dict(ladder.plan(4))
        with pytest.raises(ValueError, match="plan is for"):
            plan_from_dict(payload, llama_profile)

    def test_gap_in_stages_rejected(self, ladder, opt_profile):
        payload = plan_to_dict(ladder.plan(4))
        payload["stages"][1]["start"] += 1  # open a gap
        with pytest.raises(ValueError, match="starts at"):
            plan_from_dict(payload, opt_profile)

    def test_partial_coverage_rejected(self, ladder, opt_profile):
        payload = plan_to_dict(ladder.plan(4))
        payload["stages"] = payload["stages"][:-1]  # drop the tail
        with pytest.raises(ValueError, match="full operator range"):
            plan_from_dict(payload, opt_profile)

    def test_json_is_valid_json(self, ladder):
        parsed = json.loads(plan_to_json(ladder.plan(2)))
        assert parsed["n_stages"] == 2


class TestTransitionDiff:
    def test_split_reuses_aligned_stages(self, ladder):
        coarse, fine = ladder.plan(4), ladder.plan(8)
        diff = diff_plans(coarse, fine)
        assert diff.kind == "split"
        # Every coarse stage start coincides with a fine stage start, so 4
        # of 8 target stages reuse GPUs (nested ladder property).
        assert diff.reused_gpus == 4
        assert diff.fresh_gpus == 4

    def test_merge_loads_only_complement(self, ladder):
        fine, coarse = ladder.plan(8), ladder.plan(4)
        diff = diff_plans(fine, coarse)
        assert diff.kind == "merge"
        assert diff.reused_gpus == 4  # every merged stage keeps its head GPU
        total_params = sum(s.param_bytes for s in coarse.stages)
        # Reusing the resident halves means loading roughly half the model.
        assert diff.total_load_bytes < 0.75 * total_params
        assert diff.total_load_bytes > 0.0

    def test_noop_diff_loads_nothing(self, ladder):
        plan = ladder.plan(8)
        diff = diff_plans(plan, plan)
        assert diff.kind == "noop"
        assert diff.total_load_bytes == pytest.approx(0.0)
        assert diff.reused_gpus == plan.n_stages

    def test_split_load_bytes_cover_unshared_range(self, ladder):
        coarse, fine = ladder.plan(2), ladder.plan(4)
        diff = diff_plans(coarse, fine)
        fine_params = sum(s.param_bytes for s in fine.stages)
        shared = sum(
            t.end - t.start for t in diff.stages if t.reuses_source_index is not None
        )
        assert 0 < diff.total_load_bytes < fine_params
        assert shared > 0

    def test_different_models_rejected(self, ladder, llama_profile):
        other = GranularityLadder(llama_profile, stage_counts=(2, 4)).plan(2)
        with pytest.raises(ValueError, match="different models"):
            diff_plans(ladder.plan(2), other)

    @pytest.mark.parametrize("src,dst", [(2, 32), (32, 2), (4, 16), (16, 4)])
    def test_diff_consistency_across_rungs(self, ladder, src, dst):
        diff = diff_plans(ladder.plan(src), ladder.plan(dst))
        assert len(diff.stages) == dst
        for t in diff.stages:
            assert t.load_bytes >= 0.0
        # Load bytes never exceed the whole model.
        total = sum(s.param_bytes for s in ladder.plan(dst).stages)
        assert diff.total_load_bytes <= total + 1e-6
