"""Legacy setuptools shim.

Allows ``pip install -e . --no-use-pep517`` in offline environments that
lack the ``wheel`` package (PEP 660 editable installs require it).
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
